(* mini-C frontend tests: every language construct, executed both via
   the IR interpreter and via the full native pipeline (lower -> O3 ->
   backend -> emulator), which must agree. *)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Obrew_backend
open Obrew_minic
open Ast

let check = Alcotest.check
let ci64 = Alcotest.int64

(* compile [fns], optimize, run [name] both ways; compare + return *)
let run_both ?(opt = true) fns name (args : int64 list) : int64 =
  (* interpreter side *)
  let m1 = Lower.lower fns in
  let mem1 = Mem.create () in
  let ctx = Interp.create ~mem:mem1 m1 in
  let interp =
    match Interp.run ctx name (List.map (fun v -> Interp.I v) args) with
    | Some (Interp.I v) -> v
    | Some (Interp.P p) -> Int64.of_int p
    | _ -> Alcotest.fail "expected integer result"
  in
  (* native side *)
  let m2 = Lower.lower fns in
  if opt then Pipeline.run m2;
  List.iter (Verify.assert_ok ~ctx:"minic") m2.funcs;
  let img = Image.create () in
  ignore (Jit.install_module img m2);
  let native, _ = Image.call img ~fn:(Image.lookup img name) ~args in
  check ci64
    (Printf.sprintf "%s(%s) interp=native" name
       (String.concat "," (List.map Int64.to_string args)))
    interp native;
  native

let intf name params body = { name; params; ret = Some TInt; body }

let test_arith () =
  let f =
    intf "f" [ TInt; TInt ]
      [ Return
          (Some
             (Bin
                ( Add,
                  Bin (Mul, Param 0, i 3),
                  Bin (Sub, Param 1, Bin (Div, Param 0, i 2)) ))) ]
  in
  List.iter
    (fun (a, b, want) -> check ci64 "value" want (run_both [ f ] "f" [ a; b ]))
    [ (10L, 5L, 30L); (7L, 0L, 18L); (-8L, 3L, -17L) ]

let test_bitops () =
  let f =
    intf "f" [ TInt; TInt ]
      [ Return
          (Some
             (Bin
                ( Xor,
                  Bin (And, Param 0, i 0xFF),
                  Bin (Or, Bin (Shl, Param 1, i 4), Bin (Shr, Param 0, i 1))
                ))) ]
  in
  ignore (run_both [ f ] "f" [ 0x1234L; 0x5L ]);
  ignore (run_both [ f ] "f" [ -1L; 7L ])

let test_rem () =
  let f = intf "f" [ TInt; TInt ] [ Return (Some (Bin (Rem, Param 0, Param 1))) ] in
  check ci64 "100 mod 7" 2L (run_both [ f ] "f" [ 100L; 7L ]);
  check ci64 "-100 mod 7" (-2L) (run_both [ f ] "f" [ -100L; 7L ])

let test_comparisons () =
  List.iter
    (fun (c, a, b, want) ->
      let f = intf "f" [ TInt; TInt ] [ Return (Some (Cmp (c, Param 0, Param 1))) ] in
      check ci64 "cmp" want (run_both [ f ] "f" [ a; b ]))
    [ (Clt, 1L, 2L, 1L); (Clt, 2L, 1L, 0L); (Cle, 2L, 2L, 1L);
      (Cgt, -1L, -2L, 1L); (Cge, -5L, -5L, 1L); (Ceq, 3L, 3L, 1L);
      (Cne, 3L, 4L, 1L); (Clt, -1L, 1L, 1L) ]

let test_if_else () =
  let f =
    intf "f" [ TInt ]
      [ If
          ( Cmp (Clt, Param 0, i 0),
            [ Return (Some (Bin (Sub, i 0, Param 0))) ],
            [ Return (Some (Param 0)) ] ) ]
  in
  check ci64 "abs(-7)" 7L (run_both [ f ] "f" [ -7L ]);
  check ci64 "abs(7)" 7L (run_both [ f ] "f" [ 7L ])

let test_nested_if () =
  let f =
    intf "sign" [ TInt ]
      [ If
          ( Cmp (Clt, Param 0, i 0),
            [ Return (Some (i (-1))) ],
            [ If
                ( Cmp (Cgt, Param 0, i 0),
                  [ Return (Some (i 1)) ],
                  [ Return (Some (i 0)) ] ) ] ) ]
  in
  check ci64 "sign(-3)" (-1L) (run_both [ f ] "sign" [ -3L ]);
  check ci64 "sign(3)" 1L (run_both [ f ] "sign" [ 3L ]);
  check ci64 "sign(0)" 0L (run_both [ f ] "sign" [ 0L ])

let test_while_loop () =
  (* collatz step count, bounded *)
  let f =
    intf "collatz" [ TInt ]
      [ Decl ("n", Param 0);
        Decl ("steps", i 0);
        While
          ( Cmp (Cne, v "n", i 1),
            [ If
                ( Cmp (Ceq, Bin (Rem, v "n", i 2), i 0),
                  [ Assign ("n", Bin (Div, v "n", i 2)) ],
                  [ Assign ("n", Bin (Add, Bin (Mul, v "n", i 3), i 1)) ] );
              Assign ("steps", v "steps" +! i 1) ] );
        Return (Some (v "steps")) ]
  in
  check ci64 "collatz 6" 8L (run_both [ f ] "collatz" [ 6L ]);
  check ci64 "collatz 27" 111L (run_both [ f ] "collatz" [ 27L ]);
  check ci64 "collatz 1" 0L (run_both [ f ] "collatz" [ 1L ])

let test_for_loop () =
  let f =
    intf "sumsq" [ TInt ]
      [ Decl ("acc", i 0);
        For
          ( "k", i 0, v "k" <! Param 0, v "k" +! i 1,
            [ Assign ("acc", v "acc" +! (v "k" *! v "k")) ] );
        Return (Some (v "acc")) ]
  in
  check ci64 "sumsq 5" 30L (run_both [ f ] "sumsq" [ 5L ]);
  check ci64 "sumsq 0" 0L (run_both [ f ] "sumsq" [ 0L ])

let test_nested_loops () =
  let f =
    intf "tri" [ TInt ]
      [ Decl ("acc", i 0);
        For
          ( "a", i 0, v "a" <! Param 0, v "a" +! i 1,
            [ For
                ( "b", i 0, v "b" <! v "a", v "b" +! i 1,
                  [ Assign ("acc", v "acc" +! i 1) ] ) ] );
        Return (Some (v "acc")) ]
  in
  check ci64 "tri 5" 10L (run_both [ f ] "tri" [ 5L ]);
  check ci64 "tri 1" 0L (run_both [ f ] "tri" [ 1L ])

let test_calls () =
  let sq = intf "sq" [ TInt ] [ Return (Some (Param 0 *! Param 0)) ] in
  let f =
    intf "f" [ TInt ]
      [ Return (Some (Bin (Add, Call ("sq", [ Param 0 ]),
                           Call ("sq", [ Param 0 +! i 1 ])))) ]
  in
  check ci64 "3²+4²" 25L (run_both [ sq; f ] "f" [ 3L ])

let test_recursion_via_loop () =
  (* factorial, iteratively (no recursion in the language) *)
  let f =
    intf "fact" [ TInt ]
      [ Decl ("r", i 1);
        For
          ( "k", i 2, Cmp (Cle, v "k", Param 0), v "k" +! i 1,
            [ Assign ("r", v "r" *! v "k") ] );
        Return (Some (v "r")) ]
  in
  check ci64 "10!" 3628800L (run_both [ f ] "fact" [ 10L ])

let test_memory_widths () =
  (* store i32/i64, read back with sign extension *)
  let f =
    { name = "f"; params = [ TPtr; TInt ]; ret = Some TInt;
      body =
        [ StoreI32 (Param 0, Param 1);
          StoreI64 (PtrAdd (Param 0, i 8, 1), Param 1);
          Return
            (Some (Bin (Sub, LoadI64 (PtrAdd (Param 0, i 8, 1)),
                        LoadI32 (Param 0)))) ] }
  in
  let m = Lower.lower [ f ] in
  Pipeline.run m;
  let img = Image.create () in
  let buf = Image.alloc_data img 64 in
  ignore (Jit.install_module img m);
  let r, _ =
    Image.call img ~fn:(Image.lookup img "f")
      ~args:[ Int64.of_int buf; 0x1_0000_0001L ]
  in
  (* i32 store truncates to 1; i64 keeps everything *)
  check ci64 "width semantics" (Int64.sub 0x1_0000_0001L 1L) r

let test_floats () =
  let f =
    { name = "f"; params = [ TDouble; TDouble ]; ret = Some TDouble;
      body =
        [ Decl ("x", FBin (FMul, Param 0, Param 0));
          Return (Some (FBin (FDiv, FBin (FAdd, v "x", Param 1),
                              FloatOfInt (i 2)))) ] }
  in
  let m = Lower.lower [ f ] in
  Pipeline.run m;
  let img = Image.create () in
  ignore (Jit.install_module img m);
  let _, r =
    Image.call img ~fn:(Image.lookup img "f") ~fargs:[ 3.0; 1.0 ]
  in
  Alcotest.(check (float 1e-12)) "(-3²+1)/2" 5.0 r

let test_float_compare () =
  let f =
    { name = "f"; params = [ TDouble; TDouble ]; ret = Some TInt;
      body = [ Return (Some (FCmp (Clt, Param 0, Param 1))) ] }
  in
  let m = Lower.lower [ f ] in
  Pipeline.run m;
  let img = Image.create () in
  ignore (Jit.install_module img m);
  let go a b =
    fst (Image.call img ~fn:(Image.lookup img "f") ~fargs:[ a; b ])
  in
  check ci64 "1.5 < 2.5" 1L (go 1.5 2.5);
  check ci64 "2.5 < 1.5" 0L (go 2.5 1.5);
  check ci64 "nan unordered" 0L (go Float.nan 1.0)

let test_function_pointer () =
  let sq = intf "sq" [ TInt ] [ Return (Some (Param 0 *! Param 0)) ] in
  let f =
    { name = "f"; params = [ TPtr; TInt ]; ret = Some TInt;
      body =
        [ Return (Some (CallPtr (Param 0, [ TInt ], Some TInt, [ Param 1 ])))
        ] }
  in
  let m = Lower.lower [ sq; f ] in
  Pipeline.run m;
  let img = Image.create () in
  ignore (Jit.install_module img m);
  let r, _ =
    Image.call img ~fn:(Image.lookup img "f")
      ~args:[ Int64.of_int (Image.lookup img "sq"); 9L ]
  in
  check ci64 "indirect sq(9)" 81L r

let test_unoptimized_matches () =
  (* -O0 output must behave the same as -O3 *)
  let f =
    intf "f" [ TInt; TInt ]
      [ Decl ("acc", i 0);
        For
          ( "k", Param 1, v "k" <! Param 0, v "k" +! i 1,
            [ If
                ( Cmp (Ceq, Bin (Rem, v "k", i 3), i 0),
                  [ Assign ("acc", v "acc" +! v "k") ],
                  [ Assign ("acc", v "acc" -! i 1) ] ) ] );
        Return (Some (v "acc")) ]
  in
  let o3 = run_both [ f ] "f" [ 20L; 0L ] in
  let o0 = run_both ~opt:false [ f ] "f" [ 20L; 0L ] in
  check ci64 "O0 = O3" o3 o0

let test_compile_errors () =
  let bad = intf "f" [ TInt ] [ Return (Some (v "nope")) ] in
  (match Lower.lower [ bad ] with
   | exception Lower.Compile_error _ -> ()
   | _ -> Alcotest.fail "expected a compile error for undeclared variable");
  let bad2 =
    { name = "f"; params = []; ret = Some TInt; body = [] }
  in
  (match Lower.lower [ bad2 ] with
   | exception Lower.Compile_error _ -> ()
   | _ -> Alcotest.fail "expected missing-return error")

let () =
  Alcotest.run "minic"
    [ ("exprs",
       [ Alcotest.test_case "arithmetic" `Quick test_arith;
         Alcotest.test_case "bit operations" `Quick test_bitops;
         Alcotest.test_case "remainder" `Quick test_rem;
         Alcotest.test_case "comparisons" `Quick test_comparisons ]);
      ("control",
       [ Alcotest.test_case "if/else" `Quick test_if_else;
         Alcotest.test_case "nested if" `Quick test_nested_if;
         Alcotest.test_case "while" `Quick test_while_loop;
         Alcotest.test_case "for" `Quick test_for_loop;
         Alcotest.test_case "nested loops" `Quick test_nested_loops;
         Alcotest.test_case "iterative factorial" `Quick
           test_recursion_via_loop ]);
      ("functions",
       [ Alcotest.test_case "direct calls" `Quick test_calls;
         Alcotest.test_case "function pointers" `Quick test_function_pointer ]);
      ("data",
       [ Alcotest.test_case "memory widths" `Quick test_memory_widths;
         Alcotest.test_case "floats" `Quick test_floats;
         Alcotest.test_case "float compare" `Quick test_float_compare ]);
      ("misc",
       [ Alcotest.test_case "O0 matches O3" `Quick test_unoptimized_matches;
         Alcotest.test_case "compile errors" `Quick test_compile_errors ]) ]
