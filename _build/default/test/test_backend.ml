(* Backend tests: IR compiled to x86 and run on the emulator must
   agree with the reference interpreter; plus the full round trip
   x86 -> lift -> O3 -> re-emit -> x86 (the paper's "LLVM
   transformation" identity check). *)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Obrew_backend
open Obrew_lifter
open Ins

let check = Alcotest.check
let ci64 = Alcotest.int64

(* run a module function both through the interpreter and through the
   backend-on-emulator; integer results *)
let both m name ~args ~write_mem =
  let img = Image.create () in
  write_mem img;
  ignore (Jit.install_module img m);
  let fn = Image.lookup img name in
  let native, _ = Image.call img ~fn ~args in
  let img2 = Image.create () in
  write_mem img2;
  let ctx = Interp.create ~mem:img2.Image.cpu.Cpu.mem m in
  let interp =
    match Interp.run ctx name (List.map (fun v -> Interp.I v) args) with
    | Some (Interp.I v) -> v
    | Some (Interp.P p) -> Int64.of_int p
    | _ -> Alcotest.fail "expected int"
  in
  (native, interp)

let check_both ?(write_mem = fun _ -> ()) m name cases =
  List.iter
    (fun args ->
      let native, interp = both m name ~args ~write_mem in
      check ci64
        (Printf.sprintf "%s(%s)" name
           (String.concat "," (List.map Int64.to_string args)))
        interp native)
    cases

let test_simple_arith () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let s = Builder.bin b Add I64 (V 0) (V 1) in
  let m2 = Builder.bin b Mul I64 s (CInt (I64, 3L)) in
  let d = Builder.bin b Sub I64 m2 (V 0) in
  let x = Builder.bin b Xor I64 d (CInt (I64, 0xFFL)) in
  Builder.ret b (Some x);
  let f = Builder.func b in
  check_both { funcs = [ f ]; globals = [] } "f"
    [ [ 0L; 0L ]; [ 1L; 2L ]; [ -5L; 9L ]; [ 1000000L; -1L ] ]

let test_branches_and_phis () =
  (* |a| + sum 0..b-1 *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let neg = Builder.new_block b in
  let join = Builder.new_block b in
  let loop = Builder.new_block b in
  let exit = Builder.new_block b in
  let f = Builder.func b in
  let c = Builder.icmp b Slt I64 (V 0) (CInt (I64, 0L)) in
  Builder.condbr b c neg join;
  Builder.position b neg;
  let negd = Builder.bin b Sub I64 (CInt (I64, 0L)) (V 0) in
  Builder.br b join;
  Builder.position b join;
  let a =
    Builder.insert_phi b join ~ty:I64 [ (0, V 0); (neg, negd) ]
  in
  Builder.br b loop;
  Builder.position b loop;
  let iv = Builder.insert_phi b loop ~ty:I64 [ (join, CInt (I64, 0L)) ] in
  let acc = Builder.insert_phi b loop ~ty:I64 [ (join, a) ] in
  let acc' = Builder.bin b Add I64 acc iv in
  let iv' = Builder.bin b Add I64 iv (CInt (I64, 1L)) in
  let blk = find_block f loop in
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) when V i.id = iv -> { i with op = Phi (t, ins @ [ (loop, iv') ]) }
        | Phi (t, ins) when V i.id = acc -> { i with op = Phi (t, ins @ [ (loop, acc') ]) }
        | _ -> i)
      blk.instrs;
  let cl = Builder.icmp b Slt I64 iv' (V 1) in
  Builder.condbr b cl loop exit;
  Builder.position b exit;
  let r = Builder.insert_phi b exit ~ty:I64 [ (loop, acc') ] in
  Builder.ret b (Some r);
  check_both { funcs = [ f ]; globals = [] } "f"
    [ [ 5L; 4L ]; [ -5L; 4L ]; [ 0L; 1L ]; [ -1L; 10L ] ]

let test_memory_ops () =
  (* read a[i], store a[i]*2 to b[i], return a[i] *)
  let b =
    Builder.create ~name:"f"
      ~sg:{ args = [ Ptr 0; Ptr 0; I64 ]; ret = Some I64 }
  in
  let pa = Builder.gep b (V 0) [ GScaled (V 2, 8) ] in
  let pb = Builder.gep b (V 1) [ GScaled (V 2, 8); GConst 16 ] in
  let v = Builder.load b I64 ~align:8 pa in
  let v2 = Builder.bin b Add I64 v v in
  Builder.store b I64 ~align:8 v2 pb;
  let back = Builder.load b I64 ~align:8 pb in
  let r = Builder.bin b Sub I64 back v in
  Builder.ret b (Some r);
  let f = Builder.func b in
  let write_mem img =
    ignore (Image.alloc_data img 0x100);
    let a = 0x10000000 in
    Mem.write_u64 img.Image.cpu.Cpu.mem (a + 24) 21L
  in
  let m = { funcs = [ f ]; globals = [] } in
  List.iter
    (fun i ->
      let native, interp =
        both m "f"
          ~args:[ 0x10000000L; 0x10001000L; Int64.of_int i ]
          ~write_mem
      in
      check ci64 (Printf.sprintf "i=%d" i) interp native)
    [ 0; 1; 3 ]

let test_float_pipeline () =
  (* y = a*x + b as doubles, returned through memory *)
  let b =
    Builder.create ~name:"f"
      ~sg:{ args = [ Ptr 0; F64; F64; F64 ]; ret = None }
  in
  let ax = Builder.fbin b FMul F64 (V 1) (V 2) in
  let y = Builder.fbin b FAdd F64 ax (V 3) in
  Builder.store b F64 ~align:8 y (V 0);
  Builder.ret b None;
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  let img = Image.create () in
  ignore (Jit.install_module img m);
  let fn = Image.lookup img "f" in
  ignore
    (Image.call img ~fn ~args:[ 0x20000000L ] ~fargs:[ 2.5; 4.0; 1.25 ]);
  check (Alcotest.float 1e-12) "2.5*4+1.25" 11.25
    (Mem.read_f64 img.Image.cpu.Cpu.mem 0x20000000)

let test_calls () =
  let callee =
    let b = Builder.create ~name:"sq" ~sg:{ args = [ I64 ]; ret = Some I64 } in
    let r = Builder.bin b Mul I64 (V 0) (V 0) in
    Builder.ret b (Some r);
    Builder.func b
  in
  let caller =
    let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
    let r1 = Builder.call b "sq" { args = [ I64 ]; ret = Some I64 } [ V 0 ] in
    let r2 = Builder.call b "sq" { args = [ I64 ]; ret = Some I64 } [ V 1 ] in
    let s = Builder.bin b Add I64 r1 r2 in
    Builder.ret b (Some s);
    Builder.func b
  in
  check_both { funcs = [ callee; caller ]; globals = [] } "f"
    [ [ 3L; 4L ]; [ -2L; 10L ]; [ 0L; 0L ] ]

let test_globals () =
  (* load a constant from a module global *)
  let bytes = Bytes.create 16 in
  Bytes.set_int64_le bytes 0 111L;
  Bytes.set_int64_le bytes 8 222L;
  let g =
    { gname = "tbl"; bytes = Bytes.to_string bytes; galign = 8;
      constant = true }
  in
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  let p = Builder.gep b (Global "tbl") [ GScaled (V 0, 8) ] in
  let v = Builder.load b I64 ~align:8 p in
  Builder.ret b (Some v);
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [ g ] } in
  let img = Image.create () in
  ignore (Jit.install_module img m);
  let fn = Image.lookup img "f" in
  let r0, _ = Image.call img ~fn ~args:[ 0L ] in
  let r1, _ = Image.call img ~fn ~args:[ 1L ] in
  check ci64 "tbl[0]" 111L r0;
  check ci64 "tbl[1]" 222L r1

let test_vector_backend () =
  (* <2 x double> add via the backend *)
  let vty = Vec (2, F64) in
  let b =
    Builder.create ~name:"f" ~sg:{ args = [ Ptr 0; Ptr 0 ]; ret = Some F64 }
  in
  let va = Builder.load b vty ~align:8 (V 0) in
  let vb = Builder.load b vty ~align:8 (V 1) in
  let s = Builder.fbin b FAdd vty va vb in
  let lo = Builder.extractelt b vty s 0 in
  let hi = Builder.extractelt b vty s 1 in
  let r = Builder.fbin b FAdd F64 lo hi in
  Builder.ret b (Some r);
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  let img = Image.create () in
  let a = Image.alloc_f64_array img [| 1.0; 2.0 |] in
  let c = Image.alloc_f64_array img [| 10.0; 20.0 |] in
  ignore (Jit.install_module img m);
  let fn = Image.lookup img "f" in
  let _, r = Image.call img ~fn ~args:[ Int64.of_int a; Int64.of_int c ] in
  check (Alcotest.float 1e-12) "sum" 33.0 r

(* --- the full pipeline: x86 -> lift -> O3 -> emit -> x86 --- *)

let test_roundtrip_pipeline () =
  let img = Image.create () in
  let arr = Image.alloc_f64_array img [| 0.25; 0.5; 0.125 |] in
  (* original binary: xmm0 = (p[0] + p[1]) * p[2] + arg *)
  let fn =
    Image.install_code img
      [ Insn.I (Insn.SseMov (Insn.Movsd, Insn.Xr 1, Insn.Xm (Insn.mem_base Reg.RDI)));
        Insn.I (Insn.SseArith (Insn.FAdd, Insn.Sd, 1,
                               Insn.Xm (Insn.mem_base ~disp:8 Reg.RDI)));
        Insn.I (Insn.SseArith (Insn.FMul, Insn.Sd, 1,
                               Insn.Xm (Insn.mem_base ~disp:16 Reg.RDI)));
        Insn.I (Insn.SseArith (Insn.FAdd, Insn.Sd, 1, Insn.Xr 0));
        Insn.I (Insn.SseMov (Insn.Movsd, Insn.Xr 0, Insn.Xr 1));
        Insn.I Insn.Ret ]
  in
  let _, native =
    Image.call img ~fn ~args:[ Int64.of_int arr ] ~fargs:[ 3.0 ]
  in
  (* lift, optimize, re-emit *)
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  let sg = { args = [ Ptr 0; F64 ]; ret = Some F64 } in
  let f = Lift.lift ~read ~entry:fn ~name:"jitted" sg in
  Pipeline.run { funcs = [ f ]; globals = [] };
  Verify.assert_ok f;
  let fn2 = Jit.install_func img f in
  let _, jitted =
    Image.call img ~fn:fn2 ~args:[ Int64.of_int arr ] ~fargs:[ 3.0 ]
  in
  check (Alcotest.float 1e-12) "roundtrip identity" native jitted;
  check (Alcotest.float 1e-12) "value" ((0.25 +. 0.5) *. 0.125 +. 3.0) jitted

let test_roundtrip_loop () =
  let img = Image.create () in
  (* sum of n doubles at rdi *)
  let arr =
    Image.alloc_f64_array img (Array.init 10 (fun i -> float_of_int i *. 1.5))
  in
  let fn =
    Image.install_code img
      [ Insn.I (Insn.SseLogic (Insn.Pxor, 0, Insn.Xr 0));
        Insn.I (Insn.Alu (Insn.Xor, Insn.W32, Insn.OReg Reg.RAX, Insn.OReg Reg.RAX));
        Insn.L 0;
        Insn.I (Insn.SseArith (Insn.FAdd, Insn.Sd, 0,
                               Insn.Xm (Insn.mem_bi Reg.RDI Reg.RAX Insn.S8)));
        Insn.I (Insn.Unop (Insn.Inc, Insn.W64, Insn.OReg Reg.RAX));
        Insn.I (Insn.Alu (Insn.Cmp, Insn.W64, Insn.OReg Reg.RAX, Insn.OReg Reg.RSI));
        Insn.I (Insn.Jcc (Insn.L, Insn.Lbl 0));
        Insn.I Insn.Ret ]
  in
  let _, native =
    Image.call img ~fn ~args:[ Int64.of_int arr; 10L ]
  in
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  let sg = { args = [ Ptr 0; I64 ]; ret = Some F64 } in
  let f = Lift.lift ~read ~entry:fn ~name:"jitted" sg in
  Pipeline.run { funcs = [ f ]; globals = [] };
  Verify.assert_ok f;
  let fn2 = Jit.install_func img f in
  let _, jitted = Image.call img ~fn:fn2 ~args:[ Int64.of_int arr; 10L ] in
  check (Alcotest.float 1e-12) "loop roundtrip" native jitted

(* property: random lifted programs re-emitted through the backend *)
let gen_prog = (* small straight-line programs, as in the lifter tests *)
  let open QCheck2.Gen in
  let reg = oneofl [ Reg.RAX; Reg.RCX; Reg.RDX; Reg.RSI; Reg.RDI ] in
  let chunk =
    oneof
      [ (let* d = reg in
         let* s = reg in
         let* op = oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor ] in
         let* w = oneofl [ Insn.W32; Insn.W64 ] in
         return [ Insn.Alu (op, w, Insn.OReg d, Insn.OReg s) ]);
        (let* d = reg in
         let* imm = int_range (-1000) 1000 in
         return [ Insn.Alu (Insn.Add, Insn.W64, Insn.OReg d,
                            Insn.OImm (Int64.of_int imm)) ]);
        (let* d = reg in
         let* s = reg in
         let* sc = oneofl [ Insn.S1; Insn.S2; Insn.S4; Insn.S8 ] in
         return [ Insn.Lea (d, Insn.mem_bi ~disp:3 s s sc) ]);
        (let* d = reg in
         let* s = reg in
         let* c = oneofl [ Insn.E; Insn.NE; Insn.L; Insn.GE; Insn.A; Insn.BE ] in
         return [ Insn.Alu (Insn.Cmp, Insn.W64, Insn.OReg d, Insn.OReg s);
                  Insn.Cmov (c, Insn.W64, d, Insn.OReg s) ]);
        (let* d = reg in
         let* n = int_range 1 30 in
         let* op = oneofl [ Insn.Shl; Insn.Shr; Insn.Sar ] in
         return [ Insn.Shift (op, Insn.W64, Insn.OReg d, Insn.ShImm n) ]) ]
  in
  let prelude =
    [ Insn.Mov (Insn.W64, Insn.OReg Reg.RAX, Insn.OReg Reg.RDI);
      Insn.Mov (Insn.W64, Insn.OReg Reg.RCX, Insn.OReg Reg.RSI);
      Insn.Lea (Reg.RDX, Insn.mem_bi ~disp:7 Reg.RDI Reg.RSI Insn.S2) ]
  in
  list_size (int_range 1 8) chunk >|= fun cs -> prelude @ List.concat cs

let prop_backend_roundtrip =
  QCheck2.Test.make ~name:"lift+O3+emit = native" ~count:150 gen_prog
    (fun prog ->
      let img = Image.create () in
      let items = List.map (fun i -> Insn.I i) prog @ [ Insn.I Insn.Ret ] in
      let fn = Image.install_code img items in
      let sg = { args = [ I64; I64 ]; ret = Some I64 } in
      let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
      let f = Lift.lift ~read ~entry:fn ~name:"jitted" sg in
      Pipeline.run { funcs = [ f ]; globals = [] };
      let fn2 = Jit.install_func img f in
      List.for_all
        (fun (a, b) ->
          let na, _ = Image.call img ~fn ~args:[ a; b ] in
          let ja, _ = Image.call img ~fn:fn2 ~args:[ a; b ] in
          na = ja
          || QCheck2.Test.fail_reportf
               "mismatch (%Ld,%Ld): native=%Ld jit=%Ld on\n%s" a b na ja
               (String.concat "\n" (List.map Pp.insn prog)))
        [ (3L, 5L); (-3L, 5L); (0L, 0L); (123456789L, -987654321L) ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "backend"
    [ ("emit",
       [ Alcotest.test_case "arith" `Quick test_simple_arith;
         Alcotest.test_case "branches+phis" `Quick test_branches_and_phis;
         Alcotest.test_case "memory" `Quick test_memory_ops;
         Alcotest.test_case "float" `Quick test_float_pipeline;
         Alcotest.test_case "calls" `Quick test_calls;
         Alcotest.test_case "globals" `Quick test_globals;
         Alcotest.test_case "vectors" `Quick test_vector_backend ]);
      ("pipeline",
       [ Alcotest.test_case "fp roundtrip" `Quick test_roundtrip_pipeline;
         Alcotest.test_case "loop roundtrip" `Quick test_roundtrip_loop;
         qt prop_backend_roundtrip ]) ]
