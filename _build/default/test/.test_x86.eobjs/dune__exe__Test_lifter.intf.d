test/test_lifter.mli:
