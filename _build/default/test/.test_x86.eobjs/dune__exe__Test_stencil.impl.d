test/test_stencil.ml: Alcotest Array Float Lazy List Modes Obrew_core Obrew_stencil Printf
