test/test_ir.ml: Alcotest Builder Dom Ins Interp List Obrew_ir Obrew_x86 Pp_ir String Verify
