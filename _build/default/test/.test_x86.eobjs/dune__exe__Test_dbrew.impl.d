test/test_dbrew.ml: Alcotest Api Cpu Image Insn Int64 List Mem Obrew_backend Obrew_dbrew Obrew_ir Obrew_lifter Obrew_opt Obrew_x86 Pp Printf QCheck2 QCheck_alcotest Reg String
