test/test_minic.ml: Alcotest Ast Float Image Int64 Interp Jit List Lower Mem Obrew_backend Obrew_ir Obrew_minic Obrew_opt Obrew_x86 Pipeline Printf String Verify
