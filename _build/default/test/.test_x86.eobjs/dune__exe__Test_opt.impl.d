test/test_opt.ml: Alcotest Array Builder Cfg Ins Int64 Interp Licm List Obrew_backend Obrew_ir Obrew_opt Obrew_x86 Pipeline Pp_ir Printf QCheck2 QCheck_alcotest Verify
