test/test_isa.ml: Alcotest Array Char Cost Decode Encode Float Image Insn Int64 List Mem Obrew_x86 Pp Printf Reg String
