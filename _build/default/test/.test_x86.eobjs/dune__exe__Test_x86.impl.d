test/test_x86.ml: Alcotest Char Decode Encode Hashtbl Image Insn Int64 List Obrew_x86 Pp Printf QCheck2 QCheck_alcotest Reg String
