test/test_lifter.ml: Alcotest Cpu Image Ins Insn Int64 Interp Lift List Mem Obrew_ir Obrew_lifter Obrew_opt Obrew_x86 Pipeline Pp Pp_ir Printf QCheck2 QCheck_alcotest Reg String Verify
