test/test_dbrew.mli:
