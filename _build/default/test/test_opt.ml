(* Optimizer pass tests: targeted transformations plus differential
   testing (a pass must never change observable behaviour). *)

open Obrew_ir
open Obrew_opt
open Ins

let check = Alcotest.check
let ci64 = Alcotest.int64
let cint = Alcotest.int

let mk_mem () = Obrew_x86.Mem.create ()

let run_i64 ?(mem = mk_mem ()) m name args =
  let ctx = Interp.create ~mem m in
  match Interp.run ctx name (List.map (fun v -> Interp.I v) args) with
  | Some (Interp.I v) -> v
  | _ -> Alcotest.fail "expected integer result"

let size = Pp_ir.size

(* --- constant folding / instcombine --- *)

let test_constfold () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  (* (x + 0) + (3 * 4) - 12 = x *)
  let x0 = Builder.bin b Add I64 (V 0) (CInt (I64, 0L)) in
  let c = Builder.bin b Mul I64 (CInt (I64, 3L)) (CInt (I64, 4L)) in
  let s = Builder.bin b Add I64 x0 c in
  let r = Builder.bin b Sub I64 s (CInt (I64, 12L)) in
  Builder.ret b (Some r);
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  Pipeline.run m;
  Verify.assert_ok f;
  check cint "reduced to nothing" 0 (size f - 1 + 1 - 1);
  check ci64 "identity" 42L (run_i64 m "f" [ 42L ])

let test_add_chain_merge () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  let a1 = Builder.bin b Add I64 (V 0) (CInt (I64, 5L)) in
  let a2 = Builder.bin b Add I64 a1 (CInt (I64, 7L)) in
  Builder.ret b (Some a2);
  let f = Builder.func b in
  Pipeline.run { funcs = [ f ]; globals = [] };
  Verify.assert_ok f;
  check cint "single add" 1 (size f - 1)

let test_icmp_sub_zero () =
  (* icmp eq (sub x y) 0 -> icmp eq x y *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let d = Builder.bin b Sub I64 (V 0) (V 1) in
  let c = Builder.icmp b Eq I64 d (CInt (I64, 0L)) in
  let z = Builder.cast b Zext ~src_ty:I1 c ~dst_ty:I64 in
  Builder.ret b (Some z);
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  Pipeline.run m;
  Verify.assert_ok f;
  check ci64 "eq" 1L (run_i64 m "f" [ 9L; 9L ]);
  check ci64 "ne" 0L (run_i64 m "f" [ 9L; 8L ]);
  (* the sub must be gone *)
  let has_sub =
    List.exists
      (fun (bl : block) ->
        List.exists
          (fun i -> match i.op with Bin (Sub, _, _, _) -> true | _ -> false)
          bl.instrs)
      f.blocks
  in
  Alcotest.(check bool) "sub eliminated" false has_sub

(* --- facet-style cleanup: the Fig. 5 addsd pattern --- *)

let test_facet_cleanup () =
  (* bitcast i128 -> <2 x double>, extract 0, fadd, insert back,
     bitcast to i128, bitcast again to vector, extract: collapses *)
  let vty = Vec (2, F64) in
  let b = Builder.create ~name:"f" ~sg:{ args = [ I128; I128 ]; ret = Some F64 } in
  let v0 = Builder.cast b Bitcast ~src_ty:I128 (V 0) ~dst_ty:vty in
  let e0 = Builder.extractelt b vty v0 0 in
  let v1 = Builder.cast b Bitcast ~src_ty:I128 (V 1) ~dst_ty:vty in
  let e1 = Builder.extractelt b vty v1 0 in
  let add = Builder.fbin b FAdd F64 e0 e1 in
  let v2 = Builder.cast b Bitcast ~src_ty:I128 (V 0) ~dst_ty:vty in
  let ins = Builder.insertelt b vty v2 add 0 in
  let back = Builder.cast b Bitcast ~src_ty:vty ins ~dst_ty:I128 in
  let v3 = Builder.cast b Bitcast ~src_ty:I128 back ~dst_ty:vty in
  let res = Builder.extractelt b vty v3 0 in
  Builder.ret b (Some res);
  let f = Builder.func b in
  Pipeline.run { funcs = [ f ]; globals = [] };
  Verify.assert_ok f;
  (* expect: two bitcasts, two extracts, one fadd (plus slack) *)
  Alcotest.(check bool)
    (Printf.sprintf "facet overhead removed (size %d)" (size f))
    true
    (size f <= 7)

(* --- CFG simplification --- *)

let test_simplify_cfg_constant_branch () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  let then_b = Builder.new_block b in
  let else_b = Builder.new_block b in
  Builder.condbr b (CInt (I1, 1L)) then_b else_b;
  Builder.position b then_b;
  Builder.ret b (Some (V 0));
  Builder.position b else_b;
  Builder.ret b (Some (CInt (I64, 0L)));
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  Pipeline.run m;
  Verify.assert_ok f;
  check cint "one block" 1 (List.length f.blocks);
  check ci64 "took then branch" 5L (run_i64 m "f" [ 5L ])

(* --- mem2reg --- *)

let test_mem2reg_scalar () =
  (* virtual-stack style: alloca, spill, reload *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  let stack = Builder.alloca b 64 16 in
  let slot = Builder.gep b stack [ GConst 24 ] in
  Builder.store b I64 ~align:8 (V 0) slot;
  let l = Builder.load b I64 ~align:8 slot in
  let r = Builder.bin b Add I64 l l in
  Builder.ret b (Some r);
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  Pipeline.run m;
  Verify.assert_ok f;
  let has_mem =
    List.exists
      (fun (bl : block) ->
        List.exists
          (fun i ->
            match i.op with Alloca _ | Load _ | Store _ -> true | _ -> false)
          bl.instrs)
      f.blocks
  in
  Alcotest.(check bool) "no memory ops remain" false has_mem;
  check ci64 "value" 14L (run_i64 m "f" [ 7L ])

let test_mem2reg_branches () =
  (* store different values on two paths, load after the join *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  let stack = Builder.alloca b 8 8 in
  let t = Builder.new_block b in
  let e = Builder.new_block b in
  let j = Builder.new_block b in
  let c = Builder.icmp b Slt I64 (V 0) (CInt (I64, 0L)) in
  Builder.condbr b c t e;
  Builder.position b t;
  Builder.store b I64 ~align:8 (CInt (I64, 111L)) stack;
  Builder.br b j;
  Builder.position b e;
  Builder.store b I64 ~align:8 (CInt (I64, 222L)) stack;
  Builder.br b j;
  Builder.position b j;
  let l = Builder.load b I64 ~align:8 stack in
  Builder.ret b (Some l);
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  check ci64 "neg" 111L (run_i64 m "f" [ -1L ]);
  check ci64 "pos" 222L (run_i64 m "f" [ 1L ]);
  Pipeline.run m;
  Verify.assert_ok f;
  check ci64 "neg after" 111L (run_i64 m "f" [ -1L ]);
  check ci64 "pos after" 222L (run_i64 m "f" [ 1L ]);
  let has_alloca =
    List.exists
      (fun (bl : block) ->
        List.exists
          (fun i -> match i.op with Alloca _ -> true | _ -> false)
          bl.instrs)
      f.blocks
  in
  Alcotest.(check bool) "alloca promoted" false has_alloca

(* --- GVN --- *)

let test_gvn () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let a1 = Builder.bin b Add I64 (V 0) (V 1) in
  let a2 = Builder.bin b Add I64 (V 1) (V 0) in (* commuted duplicate *)
  let m1 = Builder.bin b Mul I64 a1 a2 in
  Builder.ret b (Some m1);
  let f = Builder.func b in
  let m = { funcs = [ f ]; globals = [] } in
  Pipeline.run m;
  Verify.assert_ok f;
  check cint "one add + one mul" 2 (size f - 1);
  check ci64 "value" 25L (run_i64 m "f" [ 2L; 3L ])

(* --- inlining --- *)

let test_inline () =
  let callee =
    let b = Builder.create ~name:"sq" ~sg:{ args = [ I64 ]; ret = Some I64 } in
    let r = Builder.bin b Mul I64 (V 0) (V 0) in
    Builder.ret b (Some r);
    let f = Builder.func b in
    f.always_inline <- true;
    f
  in
  let caller =
    let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
    let r = Builder.call b "sq" { args = [ I64 ]; ret = Some I64 } [ V 0 ] in
    let r2 = Builder.call b "sq" { args = [ I64 ]; ret = Some I64 } [ r ] in
    Builder.ret b (Some r2);
    Builder.func b
  in
  let m = { funcs = [ callee; caller ]; globals = [] } in
  Pipeline.run m;
  let f = find_func m "f" in
  Verify.assert_ok f;
  let has_call =
    List.exists
      (fun (bl : block) ->
        List.exists
          (fun i ->
            match i.op with CallDirect _ | CallPtr _ -> true | _ -> false)
          bl.instrs)
      f.blocks
  in
  Alcotest.(check bool) "calls inlined" false has_call;
  check ci64 "3^4" 81L (run_i64 m "f" [ 3L ])

(* --- unrolling --- *)

let build_const_loop ~n =
  (* acc = 0; for (i = 0; i < n; i++) acc += i*i; return acc *)
  let b = Builder.create ~name:"f" ~sg:{ args = []; ret = Some I64 } in
  let loop = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b loop;
  Builder.position b loop;
  let f = Builder.func b in
  let iv = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let acc = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let sq = Builder.bin b Mul I64 iv iv in
  let acc' = Builder.bin b Add I64 acc sq in
  let iv' = Builder.bin b Add I64 iv (CInt (I64, 1L)) in
  let blk = find_block f loop in
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) when V i.id = iv ->
          { i with op = Phi (t, ins @ [ (loop, iv') ]) }
        | Phi (t, ins) when V i.id = acc ->
          { i with op = Phi (t, ins @ [ (loop, acc') ]) }
        | _ -> i)
      blk.instrs;
  let c = Builder.icmp b Slt I64 iv' (CInt (I64, Int64.of_int n)) in
  Builder.condbr b c loop exit;
  Builder.position b exit;
  let r = Builder.insert_phi b exit ~ty:I64 [ (loop, acc') ] in
  Builder.ret b (Some r);
  f

let test_full_unroll () =
  let f = build_const_loop ~n:5 in
  let m = { funcs = [ f ]; globals = [] } in
  check ci64 "before" 30L (run_i64 m "f" []);
  Pipeline.run m;
  Verify.assert_ok f;
  check ci64 "after" 30L (run_i64 m "f" []);
  (* the loop must be gone and the result constant *)
  check cint "collapsed to a constant return" 1 (List.length f.blocks);
  check cint "no instructions left" 0 (size f - 1)

let test_unroll_respects_threshold () =
  let f = build_const_loop ~n:100000 in
  let m = { funcs = [ f ]; globals = [] } in
  Pipeline.run m;
  Verify.assert_ok f;
  (* loop too big to unroll: still has a backedge *)
  Alcotest.(check bool) "loop remains" true (List.length f.blocks > 1);
  check ci64 "still correct" 333328333350000L (run_i64 m "f" [])

(* --- vectorizer --- *)

let build_axpy () =
  (* do { y[i] = a*x[i] + y[i]; i++ } while (i+? < n)  — rotated *)
  let b =
    Builder.create ~name:"axpy"
      ~sg:{ args = [ Ptr 0; Ptr 0; F64; I64 ]; ret = None }
  in
  let loop = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b loop;
  Builder.position b loop;
  let f = Builder.func b in
  let iv = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let px = Builder.gep b (V 0) [ GScaled (iv, 8) ] in
  let py = Builder.gep b (V 1) [ GScaled (iv, 8) ] in
  let x = Builder.load b F64 ~align:8 px in
  let y = Builder.load b F64 ~align:8 py in
  let ax = Builder.fbin b FMul F64 (V 2) x in
  let s = Builder.fbin b FAdd F64 ax y in
  Builder.store b F64 ~align:8 s py;
  let iv' = Builder.bin b Add I64 iv (CInt (I64, 1L)) in
  let blk = find_block f loop in
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) when V i.id = iv ->
          { i with op = Phi (t, ins @ [ (loop, iv') ]) }
        | _ -> i)
      blk.instrs;
  let c = Builder.icmp b Slt I64 iv' (V 3) in
  Builder.condbr b c loop exit;
  Builder.position b exit;
  Builder.ret b None;
  f

let run_axpy m n =
  let mem = mk_mem () in
  let xa = 0x2000 and ya = 0x4000 in
  for i = 0 to n - 1 do
    Obrew_x86.Mem.write_f64 mem (xa + (8 * i)) (float_of_int i);
    Obrew_x86.Mem.write_f64 mem (ya + (8 * i)) (float_of_int (10 * i))
  done;
  let ctx = Interp.create ~mem m in
  ignore
    (Interp.run ctx "axpy"
       [ Interp.P xa; Interp.P ya; Interp.F 2.0; Interp.I (Int64.of_int n) ]);
  Array.init n (fun i -> Obrew_x86.Mem.read_f64 mem (ya + (8 * i)))

let expected_axpy n =
  Array.init n (fun i -> (2.0 *. float_of_int i) +. float_of_int (10 * i))

let test_vectorize () =
  List.iter
    (fun n ->
      let f = build_axpy () in
      let m = { funcs = [ f ]; globals = [] } in
      Pipeline.run ~opts:{ Pipeline.o3 with force_vector_width = Some 2 } m;
      Verify.assert_ok f;
      let has_vec =
        List.exists
          (fun (bl : block) ->
            List.exists
              (fun i ->
                match i.op with
                | Load (Vec (2, F64), _, _) | Store (Vec (2, F64), _, _, _) ->
                  true
                | _ -> false)
              bl.instrs)
          f.blocks
      in
      Alcotest.(check bool)
        (Printf.sprintf "vector ops present (n=%d)" n)
        true has_vec;
      let got = run_axpy m n in
      let want = expected_axpy n in
      Array.iteri
        (fun i v ->
          check (Alcotest.float 1e-9) (Printf.sprintf "y[%d] n=%d" i n)
            want.(i) v)
        got)
    [ 2; 3; 7; 8 ]

let test_vectorize_not_applied_without_force () =
  let f = build_axpy () in
  let m = { funcs = [ f ]; globals = [] } in
  Pipeline.run m;
  (* mirrors the paper: without -force-vector-width the JIT pipeline
     does not vectorize this loop *)
  let has_vec =
    List.exists
      (fun (bl : block) ->
        List.exists
          (fun i ->
            match i.op with
            | Load (Vec _, _, _) | Store (Vec _, _, _, _) -> true
            | _ -> false)
          bl.instrs)
      f.blocks
  in
  Alcotest.(check bool) "scalar loop kept" false has_vec

(* --- LICM --- *)

let build_invariant_loop () =
  (* do { acc += a*b; i++ } while (i < n): a*b is loop invariant *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64; I64 ]; ret = Some I64 } in
  let loop = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b loop;
  Builder.position b loop;
  let f = Builder.func b in
  let iv = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let acc = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let prod = Builder.bin b Mul I64 (V 0) (V 1) in
  let acc' = Builder.bin b Add I64 acc prod in
  let iv' = Builder.bin b Add I64 iv (CInt (I64, 1L)) in
  let blk = find_block f loop in
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) when V i.id = iv -> { i with op = Phi (t, ins @ [ (loop, iv') ]) }
        | Phi (t, ins) when V i.id = acc -> { i with op = Phi (t, ins @ [ (loop, acc') ]) }
        | _ -> i)
      blk.instrs;
  let c = Builder.icmp b Slt I64 iv' (V 2) in
  Builder.condbr b c loop exit;
  Builder.position b exit;
  let r = Builder.insert_phi b exit ~ty:I64 [ (loop, acc') ] in
  Builder.ret b (Some r);
  f

let test_licm_hoists_invariant () =
  let f = build_invariant_loop () in
  let m = { funcs = [ f ]; globals = [] } in
  let before = run_i64 m "f" [ 6L; 7L; 5L ] in
  check ci64 "6*7*5" 210L before;
  Alcotest.(check bool) "hoisted something" true (Licm.run f);
  Verify.assert_ok ~ctx:"licm" f;
  check ci64 "same result" 210L (run_i64 m "f" [ 6L; 7L; 5L ]);
  (* the multiply must no longer be in the loop block *)
  let loop_has_mul =
    List.exists
      (fun (bl : block) ->
        List.length (Cfg.rpo f) > 0
        && (match bl.term with CondBr (_, t, _) -> t = bl.bid | _ -> false)
        && List.exists
             (fun i -> match i.op with Bin (Mul, _, _, _) -> true | _ -> false)
             bl.instrs)
      f.blocks
  in
  Alcotest.(check bool) "loop body free of the multiply" false loop_has_mul

let test_licm_keeps_variant () =
  (* iv * b is NOT invariant: must stay in the loop *)
  let f = build_invariant_loop () in
  (* mutate: make the multiply use the induction variable *)
  List.iter
    (fun (bl : block) ->
      bl.instrs <-
        List.map
          (fun i ->
            match i.op with
            | Bin (Mul, t, _, y) -> (
              (* first phi of this block is the iv *)
              match
                List.find_opt
                  (fun j -> match j.op with Phi _ -> true | _ -> false)
                  bl.instrs
              with
              | Some p -> { i with op = Bin (Mul, t, V p.id, y) }
              | None -> i)
            | _ -> i)
          bl.instrs)
    f.blocks;
  Verify.assert_ok f;
  let m = { funcs = [ f ]; globals = [] } in
  let before = run_i64 m "f" [ 0L; 2L; 4L ] in
  ignore (Licm.run f);
  Verify.assert_ok ~ctx:"licm variant" f;
  check ci64 "unchanged behaviour" before (run_i64 m "f" [ 0L; 2L; 4L ])

let test_licm_load_with_store_in_loop () =
  (* a loop containing a store must not hoist loads *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ Ptr 0; I64 ]; ret = Some I64 } in
  let loop = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b loop;
  Builder.position b loop;
  let f = Builder.func b in
  let iv = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let ld = Builder.load b I64 ~align:8 (V 0) in
  let inc = Builder.bin b Add I64 ld (CInt (I64, 1L)) in
  Builder.store b I64 ~align:8 inc (V 0);
  let iv' = Builder.bin b Add I64 iv (CInt (I64, 1L)) in
  let blk = find_block f loop in
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) when V i.id = iv -> { i with op = Phi (t, ins @ [ (loop, iv') ]) }
        | _ -> i)
      blk.instrs;
  let c = Builder.icmp b Slt I64 iv' (V 1) in
  Builder.condbr b c loop exit;
  Builder.position b exit;
  Builder.ret b (Some (CInt (I64, 0L)));
  ignore (Licm.run f);
  Verify.assert_ok ~ctx:"licm store loop" f;
  (* behaviour check: counter incremented n times *)
  let m = { funcs = [ f ]; globals = [] } in
  let mem = mk_mem () in
  Obrew_x86.Mem.write_u64 mem 0x1000 0L;
  let ctx = Interp.create ~mem m in
  ignore (Interp.run ctx "f" [ Interp.P 0x1000; Interp.I 5L ]);
  check ci64 "incremented 5 times" 5L (Obrew_x86.Mem.read_u64 mem 0x1000)

(* --- differential: pipeline preserves semantics on a mixed function --- *)

let build_mixed seed =
  (* a small function with branches, loads/stores and arithmetic,
     parameterized by [seed] for variety *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; Ptr 0 ]; ret = Some I64 } in
  let stack = Builder.alloca b 32 16 in
  let s0 = Builder.gep b stack [ GConst 0 ] in
  Builder.store b I64 ~align:8 (V 0) s0;
  let t = Builder.new_block b in
  let e = Builder.new_block b in
  let j = Builder.new_block b in
  let c =
    Builder.icmp b
      (if seed land 1 = 0 then Slt else Sgt)
      I64 (V 0)
      (CInt (I64, Int64.of_int (seed mod 7)))
  in
  Builder.condbr b c t e;
  Builder.position b t;
  let lt = Builder.load b I64 ~align:8 s0 in
  let vt = Builder.bin b Mul I64 lt (CInt (I64, 3L)) in
  Builder.store b I64 ~align:8 vt s0;
  Builder.br b j;
  Builder.position b e;
  let le = Builder.load b I64 ~align:8 s0 in
  let ve = Builder.bin b Add I64 le (CInt (I64, Int64.of_int seed)) in
  Builder.store b I64 ~align:8 ve s0;
  Builder.br b j;
  Builder.position b j;
  let l = Builder.load b I64 ~align:8 s0 in
  let ext = Builder.load b I64 ~align:8 (V 1) in
  let r = Builder.bin b Xor I64 l ext in
  Builder.ret b (Some r);
  Builder.func b

let test_differential () =
  for seed = 0 to 24 do
    let f1 = build_mixed seed in
    let f2 = build_mixed seed in
    let m1 = { funcs = [ f1 ]; globals = [] } in
    let m2 = { funcs = [ f2 ]; globals = [] } in
    Pipeline.run m2;
    Verify.assert_ok f2;
    List.iter
      (fun arg ->
        let mem1 = mk_mem () and mem2 = mk_mem () in
        Obrew_x86.Mem.write_u64 mem1 0x3000 0x5555AAAAL;
        Obrew_x86.Mem.write_u64 mem2 0x3000 0x5555AAAAL;
        let r1 =
          let ctx = Interp.create ~mem:mem1 m1 in
          Interp.run ctx "f" [ Interp.I arg; Interp.P 0x3000 ]
        in
        let r2 =
          let ctx = Interp.create ~mem:mem2 m2 in
          Interp.run ctx "f" [ Interp.I arg; Interp.P 0x3000 ]
        in
        match r1, r2 with
        | Some (Interp.I a), Some (Interp.I b) ->
          check ci64 (Printf.sprintf "seed %d arg %Ld" seed arg) a b
        | _ -> Alcotest.fail "expected integers")
      [ -9L; -1L; 0L; 1L; 5L; 100L ]
  done

(* --- property: random expression trees, optimized vs unoptimized --- *)

let gen_expr_func =
  (* build a random pure expression dag over two i64 params and embed
     it in a function; the pipeline must not change its value *)
  let open QCheck2.Gen in
  let leaf = oneofl [ `P0; `P1; `C 0; `C 1; `C (-1); `C 7; `C 255 ] in
  let rec tree n =
    if n = 0 then map (fun l -> `Leaf l) leaf
    else
      oneof
        [ map (fun l -> `Leaf l) leaf;
          (let* op =
             oneofl [ Add; Sub; Mul; And; Or; Xor; Shl; LShr; AShr ]
           in
           let* a = tree (n - 1) in
           let* b = tree (n - 1) in
           return (`Bin (op, a, b)));
          (let* p = oneofl [ Eq; Ne; Slt; Sle; Ult; Uge ] in
           let* a = tree (n - 1) in
           let* b = tree (n - 1) in
           let* t = tree (n - 1) in
           let* e = tree (n - 1) in
           return (`Sel (p, a, b, t, e))) ]
  in
  tree 4

let build_expr_func tree : func =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let rec go t =
    match t with
    | `Leaf `P0 -> V 0
    | `Leaf `P1 -> V 1
    | `Leaf (`C c) -> CInt (I64, Int64.of_int c)
    | `Bin (op, x, y) ->
      let vx = go x and vy = go y in
      (* mask shift counts so behaviour is defined *)
      let vy =
        match op with
        | Shl | LShr | AShr -> Builder.bin b And I64 vy (CInt (I64, 63L))
        | _ -> vy
      in
      Builder.bin b op I64 vx vy
    | `Sel (p, x, y, t', e') ->
      let c = Builder.icmp b p I64 (go x) (go y) in
      Builder.select b I64 c (go t') (go e')
  in
  let r = go tree in
  Builder.ret b (Some r);
  Builder.func b

let prop_optimizer_preserves_expressions =
  QCheck2.Test.make ~name:"O3 preserves random expression dags" ~count:400
    gen_expr_func
    (fun tree ->
      let f1 = build_expr_func tree in
      let f2 = build_expr_func tree in
      let m1 = { funcs = [ f1 ]; globals = [] } in
      let m2 = { funcs = [ f2 ]; globals = [] } in
      Pipeline.run m2;
      Verify.assert_ok ~ctx:"random dag" f2;
      List.for_all
        (fun (a, b) ->
          let r1 = run_i64 m1 "f" [ a; b ] in
          let r2 = run_i64 m2 "f" [ a; b ] in
          r1 = r2
          || QCheck2.Test.fail_reportf "mismatch (%Ld,%Ld): %Ld vs %Ld\n%s"
               a b r1 r2 (Pp_ir.func f1))
        [ (0L, 0L); (1L, -1L); (13L, 64L); (Int64.max_int, 2L);
          (Int64.min_int, -7L) ])

let prop_backend_preserves_expressions =
  QCheck2.Test.make ~name:"backend preserves random expression dags"
    ~count:200 gen_expr_func
    (fun tree ->
      let f1 = build_expr_func tree in
      let f2 = build_expr_func tree in
      let m1 = { funcs = [ f1 ]; globals = [] } in
      let m2 = { funcs = [ f2 ]; globals = [] } in
      Pipeline.run m2;
      let img = Obrew_x86.Image.create () in
      ignore (Obrew_backend.Jit.install_module img m2);
      let fn = Obrew_x86.Image.lookup img "f" in
      List.for_all
        (fun (a, b) ->
          let r1 = run_i64 m1 "f" [ a; b ] in
          let r2, _ = Obrew_x86.Image.call img ~fn ~args:[ a; b ] in
          r1 = r2
          || QCheck2.Test.fail_reportf "backend mismatch (%Ld,%Ld)" a b)
        [ (0L, 0L); (5L, 9L); (-3L, 70L); (Int64.min_int, 1L) ])

let () =
  Alcotest.run "opt"
    [ ("fold+combine",
       [ Alcotest.test_case "constant folding" `Quick test_constfold;
         Alcotest.test_case "add chain" `Quick test_add_chain_merge;
         Alcotest.test_case "icmp sub zero" `Quick test_icmp_sub_zero;
         Alcotest.test_case "facet cleanup" `Quick test_facet_cleanup ]);
      ("cfg",
       [ Alcotest.test_case "constant branch" `Quick
           test_simplify_cfg_constant_branch ]);
      ("mem2reg",
       [ Alcotest.test_case "scalar slot" `Quick test_mem2reg_scalar;
         Alcotest.test_case "branched stores" `Quick test_mem2reg_branches ]);
      ("gvn", [ Alcotest.test_case "cse" `Quick test_gvn ]);
      ("inline", [ Alcotest.test_case "always inline" `Quick test_inline ]);
      ("unroll",
       [ Alcotest.test_case "full unroll" `Quick test_full_unroll;
         Alcotest.test_case "threshold" `Quick test_unroll_respects_threshold ]);
      ("vectorize",
       [ Alcotest.test_case "axpy width 2" `Quick test_vectorize;
         Alcotest.test_case "off by default" `Quick
           test_vectorize_not_applied_without_force ]);
      ("licm",
       [ Alcotest.test_case "hoists invariant" `Quick test_licm_hoists_invariant;
         Alcotest.test_case "keeps variant" `Quick test_licm_keeps_variant;
         Alcotest.test_case "stores block loads" `Quick
           test_licm_load_with_store_in_loop ]);
      ("differential",
       [ Alcotest.test_case "pipeline preserves semantics" `Quick
           test_differential;
         QCheck_alcotest.to_alcotest prop_optimizer_preserves_expressions;
         QCheck_alcotest.to_alcotest prop_backend_preserves_expressions ]) ]
