(* End-to-end integration: every mode of Fig. 9 must compute the same
   Jacobi result as an OCaml reference implementation. *)

open Obrew_core

let sz = 21
let iters = 3

let env = lazy (Modes.build ~sz ())

let reference_result () =
  let env = Lazy.force env in
  Modes.reset env;
  let m1 = Obrew_stencil.Stencil.read_matrix env.Modes.w env.Modes.w.m1 in
  let m2 = Obrew_stencil.Stencil.read_matrix env.Modes.w env.Modes.w.m2 in
  let a, _ = Obrew_stencil.Stencil.reference ~sz ~iters m1 m2 in
  a

let check_mode kind style tr () =
  let env = Lazy.force env in
  let expected = reference_result () in
  let kernel, dt = Modes.transform env kind style tr in
  Alcotest.(check bool) "compile time sane" true (dt >= 0.0);
  let cycles, insns = Modes.run env kind style ~kernel ~iters in
  Alcotest.(check bool) "ran" true (cycles > 0 && insns > 0);
  let got = Modes.result_matrix env ~iters in
  Array.iteri
    (fun i e ->
      if Float.abs (e -. got.(i)) > 1e-9 then
        Alcotest.failf "%s %s %s: cell %d differs: ref %.17g got %.17g"
          (Modes.kind_name kind) (Modes.style_name style)
          (Modes.transform_name tr) i e got.(i))
    expected

let cases =
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun style ->
          List.map
            (fun tr ->
              Alcotest.test_case
                (Printf.sprintf "%s/%s/%s" (Modes.kind_name kind)
                   (Modes.style_name style) (Modes.transform_name tr))
                `Slow
                (check_mode kind style tr))
            [ Modes.Native; Modes.Llvm; Modes.LlvmFix; Modes.DBrew;
              Modes.DBrewLlvm ])
        [ Modes.Element; Modes.Line ])
    [ Modes.Direct; Modes.Flat; Modes.Sorted ]

let () = Alcotest.run "stencil" [ ("modes", cases) ]
