(* IR construction, verification and interpretation tests. *)

open Obrew_ir
open Ins

let check = Alcotest.check
let ci64 = Alcotest.int64


let mk_mem () = Obrew_x86.Mem.create ()

let run_i64 ?(mem = mk_mem ()) m name args =
  let ctx = Interp.create ~mem m in
  match Interp.run ctx name (List.map (fun v -> Interp.I v) args) with
  | Some (Interp.I v) -> v
  | Some _ -> Alcotest.fail "expected integer result"
  | None -> Alcotest.fail "expected a result"

let run_f64 ?(mem = mk_mem ()) m name args =
  let ctx = Interp.create ~mem m in
  match Interp.run ctx name args with
  | Some (Interp.F v) -> v
  | _ -> Alcotest.fail "expected float result"

(* max(a,b) via select — the Fig. 6 example at IR level *)
let build_max () =
  let b = Builder.create ~name:"max" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let lt = Builder.icmp b Slt I64 (V 0) (V 1) in
  let r = Builder.select b I64 lt (V 1) (V 0) in
  Builder.ret b (Some r);
  Builder.func b

let test_build_and_run () =
  let f = build_max () in
  Verify.assert_ok f;
  let m = { funcs = [ f ]; globals = [] } in
  check ci64 "max(3,5)" 5L (run_i64 m "max" [ 3L; 5L ]);
  check ci64 "max(5,3)" 5L (run_i64 m "max" [ 5L; 3L ]);
  check ci64 "max(-7,2)" 2L (run_i64 m "max" [ -7L; 2L ])

(* sum 0..n-1 with a loop: tests phis and branches *)
let build_sum () =
  let b = Builder.create ~name:"sum" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  let loop = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.br b loop;
  Builder.position b loop;
  let iv = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let acc = Builder.insert_phi b loop ~ty:I64 [ (0, CInt (I64, 0L)) ] in
  let acc' = Builder.bin b Add I64 acc iv in
  let iv' = Builder.bin b Add I64 iv (CInt (I64, 1L)) in
  (* patch phis with backedge values *)
  let blk = find_block (Builder.func b) loop in
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) when V i.id = iv ->
          { i with op = Phi (t, ins @ [ (loop, iv') ]) }
        | Phi (t, ins) when V i.id = acc ->
          { i with op = Phi (t, ins @ [ (loop, acc') ]) }
        | _ -> i)
      blk.instrs;
  let c = Builder.icmp b Slt I64 iv' (V 0) in
  Builder.condbr b c loop exit;
  Builder.position b exit;
  let r = Builder.insert_phi b exit ~ty:I64 [ (loop, acc') ] in
  Builder.ret b (Some r);
  Builder.func b

let test_loop () =
  let f = build_sum () in
  Verify.assert_ok f;
  let m = { funcs = [ f ]; globals = [] } in
  check ci64 "sum 0..9" 45L (run_i64 m "sum" [ 10L ]);
  check ci64 "sum 0..0" 0L (run_i64 m "sum" [ 1L ])

let test_memory_roundtrip () =
  (* store f64, load it back, double it *)
  let b =
    Builder.create ~name:"dbl" ~sg:{ args = [ Ptr 0 ]; ret = Some F64 }
  in
  let v = Builder.load b F64 ~align:8 (V 0) in
  let r = Builder.fbin b FAdd F64 v v in
  Builder.store b F64 ~align:8 r (V 0);
  let v2 = Builder.load b F64 ~align:8 (V 0) in
  Builder.ret b (Some v2);
  let f = Builder.func b in
  Verify.assert_ok f;
  let m = { funcs = [ f ]; globals = [] } in
  let mem = mk_mem () in
  Obrew_x86.Mem.write_f64 mem 0x1000 21.0;
  let r = run_f64 ~mem m "dbl" [ Interp.P 0x1000 ] in
  check (Alcotest.float 1e-9) "2*21" 42.0 r;
  check (Alcotest.float 1e-9) "stored" 42.0 (Obrew_x86.Mem.read_f64 mem 0x1000)

let test_vector_ops () =
  let vty = Vec (2, F64) in
  let b = Builder.create ~name:"v" ~sg:{ args = [ F64; F64 ]; ret = Some F64 } in
  let v0 = Builder.insertelt b vty (Undef vty) (V 0) 0 in
  let v1 = Builder.insertelt b vty v0 (V 1) 1 in
  let s = Builder.fbin b FAdd vty v1 v1 in
  let lo = Builder.extractelt b vty s 0 in
  let hi = Builder.extractelt b vty s 1 in
  let r = Builder.fbin b FAdd F64 lo hi in
  Builder.ret b (Some r);
  let f = Builder.func b in
  Verify.assert_ok f;
  let m = { funcs = [ f ]; globals = [] } in
  let ctx = Interp.create ~mem:(mk_mem ()) m in
  match Interp.run ctx "v" [ Interp.F 1.5; Interp.F 2.5 ] with
  | Some (Interp.F r) -> check (Alcotest.float 1e-9) "2*(1.5+2.5)" 8.0 r
  | _ -> Alcotest.fail "expected float"

let test_bitcast_i128_vec () =
  (* i128 <-> <2 x double> roundtrips, as used by SSE facets *)
  let b = Builder.create ~name:"bc" ~sg:{ args = [ F64 ]; ret = Some F64 } in
  let vty = Vec (2, F64) in
  let v0 = Builder.insertelt b vty (Undef vty) (V 0) 0 in
  let v1 = Builder.insertelt b vty v0 (CF64 0.0) 1 in
  let i = Builder.cast b Bitcast ~src_ty:vty v1 ~dst_ty:I128 in
  let back = Builder.cast b Bitcast ~src_ty:I128 i ~dst_ty:vty in
  let r = Builder.extractelt b vty back 0 in
  Builder.ret b (Some r);
  let f = Builder.func b in
  Verify.assert_ok f;
  let m = { funcs = [ f ]; globals = [] } in
  let ctx = Interp.create ~mem:(mk_mem ()) m in
  match Interp.run ctx "bc" [ Interp.F 3.25 ] with
  | Some (Interp.F r) -> check (Alcotest.float 1e-12) "roundtrip" 3.25 r
  | _ -> Alcotest.fail "expected float"

let test_call () =
  let callee =
    let b = Builder.create ~name:"twice" ~sg:{ args = [ I64 ]; ret = Some I64 } in
    let r = Builder.bin b Add I64 (V 0) (V 0) in
    Builder.ret b (Some r);
    Builder.func b
  in
  let caller =
    let b = Builder.create ~name:"main" ~sg:{ args = [ I64 ]; ret = Some I64 } in
    let r =
      Builder.call b "twice" { args = [ I64 ]; ret = Some I64 } [ V 0 ]
    in
    let r2 =
      Builder.call b "twice" { args = [ I64 ]; ret = Some I64 } [ r ]
    in
    Builder.ret b (Some r2);
    Builder.func b
  in
  let m = { funcs = [ callee; caller ]; globals = [] } in
  List.iter Verify.assert_ok m.funcs;
  check ci64 "4x" 44L (run_i64 m "main" [ 11L ])

let test_verifier_catches_errors () =
  (* use before def in a dominating sense *)
  let f = build_max () in
  (* corrupt: swap icmp operands for an undefined id *)
  let blk = entry_block f in
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Icmp (p, t, _, b) -> { i with op = Icmp (p, t, V 999, b) }
        | _ -> i)
      blk.instrs;
  (match Verify.check f with
   | [] -> Alcotest.fail "verifier missed undefined value"
   | _ -> ());
  (* type error *)
  let f2 = build_max () in
  let blk2 = entry_block f2 in
  blk2.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Icmp (p, _, a, b) -> { i with op = Icmp (p, I32, a, b) }
        | _ -> i)
      blk2.instrs;
  (match Verify.check f2 with
   | [] -> Alcotest.fail "verifier missed type error"
   | _ -> ())

let test_dom () =
  let f = build_sum () in
  let dom = Dom.compute f in
  let entry = (entry_block f).bid in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun (b : block) -> Dom.dominates dom entry b.bid) f.blocks)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_printer () =
  let f = build_max () in
  let s = Pp_ir.func f in
  Alcotest.(check bool) "mentions icmp" true (contains s "icmp slt");
  Alcotest.(check bool) "mentions select" true (contains s "select")

let () =
  Alcotest.run "ir"
    [ ("build+interp",
       [ Alcotest.test_case "max/select" `Quick test_build_and_run;
         Alcotest.test_case "loop/phi" `Quick test_loop;
         Alcotest.test_case "memory" `Quick test_memory_roundtrip;
         Alcotest.test_case "vectors" `Quick test_vector_ops;
         Alcotest.test_case "i128 bitcast" `Quick test_bitcast_i128_vec;
         Alcotest.test_case "calls" `Quick test_call ]);
      ("verify",
       [ Alcotest.test_case "catches errors" `Quick test_verifier_catches_errors;
         Alcotest.test_case "dominators" `Quick test_dom;
         Alcotest.test_case "printer" `Quick test_printer ]) ]
