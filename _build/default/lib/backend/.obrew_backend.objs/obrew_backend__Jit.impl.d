lib/backend/jit.ml: Cpu Image Ins Isel List Mem Obrew_ir Obrew_x86 String
