lib/backend/regalloc.ml: Cfg Hashtbl Ins List Obrew_ir Obrew_opt Obrew_x86 Option Reg
