lib/backend/isel.ml: Array Cfg Encode Hashtbl Ins Insn Int32 Int64 List Obrew_ir Obrew_opt Obrew_x86 Option Printf Reg Regalloc Verify
