lib/minic/lower.ml: Ast Builder Hashtbl Ins List Obrew_ir Option Printf Verify
