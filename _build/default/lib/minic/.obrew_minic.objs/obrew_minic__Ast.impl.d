lib/minic/ast.ml: Int64
