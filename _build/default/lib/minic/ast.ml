(** A small C-like language, sufficient for the paper's generic stencil
    code (Fig. 7) and the Jacobi drivers.  It plays the role of the C
    compiler producing the binary code that DBrew and the lifter
    consume. *)

type ty = TInt | TDouble | TPtr

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type expr =
  | Int of int64
  | Flt of float
  | Param of int             (* 0-based function parameter *)
  | Var of string            (* local variable *)
  | Bin of bin * expr * expr
  | FBin of fbin * expr * expr
  | Cmp of cmp * expr * expr (* int compare, yields 0/1 *)
  | FCmp of cmp * expr * expr
  | PtrAdd of expr * expr * int (* base + index * scale(bytes) *)
  | LoadI64 of expr
  | LoadI32 of expr          (* sign-extended, C "int" *)
  | LoadF64 of expr
  | FloatOfInt of expr
  | Call of string * expr list
  | CallPtr of expr * ty list * ty option * expr list
    (* indirect call through a function-pointer value *)

and bin = Add | Sub | Mul | Div | Rem | Shl | Shr | And | Or | Xor
and fbin = FAdd | FSub | FMul | FDiv

type stmt =
  | Decl of string * expr           (* declare + initialize a local *)
  | Assign of string * expr
  | StoreI64 of expr * expr         (* address, value *)
  | StoreI32 of expr * expr
  | StoreF64 of expr * expr
  | If of expr * stmt list * stmt list (* nonzero = true *)
  | While of expr * stmt list
  | For of string * expr * expr * expr * stmt list
    (* For (i, init, cond, step-expr assigned to i, body) *)
  | Expr of expr                    (* evaluate for side effects *)
  | Return of expr option

type fn = {
  name : string;
  params : ty list;
  ret : ty option;
  body : stmt list;
}

type prog = fn list

(* tiny conveniences for writing kernels *)
let ( +! ) a b = Bin (Add, a, b)
let ( -! ) a b = Bin (Sub, a, b)
let ( *! ) a b = Bin (Mul, a, b)
let ( +. ) a b = FBin (FAdd, a, b)
let ( *. ) a b = FBin (FMul, a, b)
let ( <! ) a b = Cmp (Clt, a, b)
let i n = Int (Int64.of_int n)
let v name = Var name
