(** Lowering of the mini-C AST to IR.  Locals become entry-block
    allocas (clang-style); the optimizer's mem2reg promotes them. *)

open Obrew_ir
open Ins

exception Compile_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let ir_ty = function
  | Ast.TInt -> I64
  | Ast.TDouble -> F64
  | Ast.TPtr -> Ptr 0

type env = {
  b : Builder.t;
  vars : (string, value) Hashtbl.t;  (* name -> alloca pointer *)
  vtypes : (string, ty) Hashtbl.t;   (* name -> declared type *)
  fsigs : (string, signature) Hashtbl.t;
  fname : string;
  ret : ty option;
}

(* every expression evaluates to i64, f64 or ptr; pointers and ints
   interconvert implicitly (as in the paper's flat C code) *)
let rec expr env (e : Ast.expr) : value * ty =
  let bld = env.b in
  match e with
  | Ast.Int n -> (CInt (I64, n), I64)
  | Ast.Flt f -> (CF64 f, F64)
  | Ast.Param i -> (
    let f = Builder.func bld in
    match List.nth_opt f.params i, List.nth_opt f.sg.args i with
    | Some id, Some t -> (V id, t)
    | _ -> err "%s: no parameter %d" env.fname i)
  | Ast.Var n -> (
    match Hashtbl.find_opt env.vars n with
    | Some slot ->
      (* type is tracked per declaration; stored in a shadow table *)
      let t = var_ty env n in
      (Builder.load bld t ~align:8 slot, t)
    | None -> err "%s: undeclared variable %s" env.fname n)
  | Ast.Bin (op, a, b) ->
    let va = as_int env (expr env a) in
    let vb = as_int env (expr env b) in
    let o =
      match op with
      | Ast.Add -> Add | Ast.Sub -> Sub | Ast.Mul -> Mul | Ast.Div -> SDiv
      | Ast.Rem -> SRem | Ast.Shl -> Shl | Ast.Shr -> AShr | Ast.And -> And
      | Ast.Or -> Or | Ast.Xor -> Xor
    in
    (Builder.bin bld o I64 va vb, I64)
  | Ast.FBin (op, a, b) ->
    let va = as_f64 env (expr env a) in
    let vb = as_f64 env (expr env b) in
    let o =
      match op with
      | Ast.FAdd -> FAdd | Ast.FSub -> FSub | Ast.FMul -> FMul
      | Ast.FDiv -> FDiv
    in
    (Builder.fbin bld o F64 va vb, F64)
  | Ast.Cmp (c, a, b) ->
    let va = as_int env (expr env a) in
    let vb = as_int env (expr env b) in
    let p =
      match c with
      | Ast.Ceq -> Eq | Ast.Cne -> Ne | Ast.Clt -> Slt | Ast.Cle -> Sle
      | Ast.Cgt -> Sgt | Ast.Cge -> Sge
    in
    let bit = Builder.icmp bld p I64 va vb in
    (Builder.cast bld Zext ~src_ty:I1 bit ~dst_ty:I64, I64)
  | Ast.FCmp (c, a, b) ->
    let va = as_f64 env (expr env a) in
    let vb = as_f64 env (expr env b) in
    let p =
      match c with
      | Ast.Ceq -> Oeq | Ast.Cne -> One | Ast.Clt -> Olt | Ast.Cle -> Ole
      | Ast.Cgt -> Ogt | Ast.Cge -> Oge
    in
    let bit = Builder.fcmp bld p F64 va vb in
    (Builder.cast bld Zext ~src_ty:I1 bit ~dst_ty:I64, I64)
  | Ast.PtrAdd (base, index, scale) ->
    let vb = as_ptr env (expr env base) in
    let vi = as_int env (expr env index) in
    (Builder.gep bld vb [ GScaled (vi, scale) ], Ptr 0)
  | Ast.LoadI64 p ->
    let vp = as_ptr env (expr env p) in
    (Builder.load bld I64 ~align:8 vp, I64)
  | Ast.LoadI32 p ->
    let vp = as_ptr env (expr env p) in
    let v32 = Builder.load bld I32 ~align:4 vp in
    (Builder.cast bld Sext ~src_ty:I32 v32 ~dst_ty:I64, I64)
  | Ast.LoadF64 p ->
    let vp = as_ptr env (expr env p) in
    (Builder.load bld F64 ~align:8 vp, F64)
  | Ast.FloatOfInt e ->
    let v = as_int env (expr env e) in
    (Builder.cast bld SiToFp ~src_ty:I64 v ~dst_ty:F64, F64)
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt env.fsigs name with
    | None -> err "%s: call to unknown function %s" env.fname name
    | Some sg ->
      let avs =
        List.map2 (fun t a -> coerce env (expr env a) t) sg.args args
      in
      let r = Builder.call bld name sg avs in
      (r, Option.value ~default:I64 sg.ret))
  | Ast.CallPtr (f, argtys, rty, args) ->
    let sg = { args = List.map ir_ty argtys; ret = Option.map ir_ty rty } in
    let fv = as_ptr env (expr env f) in
    let avs = List.map2 (fun t a -> coerce env (expr env a) t) sg.args args in
    let r = Builder.call_ptr bld fv sg avs in
    (r, Option.value ~default:I64 sg.ret)

and var_ty env n =
  match Hashtbl.find_opt env.vtypes n with
  | Some t -> t
  | None -> err "%s: no type for %s" env.fname n

and as_int env ((v, t) : value * ty) : value =
  match t with
  | I64 -> v
  | Ptr _ -> Builder.cast env.b PtrToInt ~src_ty:t v ~dst_ty:I64
  | F64 -> err "%s: float used as int" env.fname
  | _ -> err "%s: unexpected type" env.fname

and as_f64 env ((v, t) : value * ty) : value =
  match t with
  | F64 -> v
  | _ -> err "%s: int used as float" env.fname

and as_ptr env ((v, t) : value * ty) : value =
  match t with
  | Ptr _ -> v
  | I64 -> Builder.cast env.b IntToPtr ~src_ty:I64 v ~dst_ty:(Ptr 0)
  | _ -> err "%s: float used as pointer" env.fname

and coerce env ((v, t) as vt : value * ty) (want : ty) : value =
  if t = want then v
  else
    match want with
    | I64 -> as_int env vt
    | Ptr _ -> as_ptr env vt
    | F64 -> as_f64 env vt
    | _ -> err "%s: cannot coerce" env.fname

let rec stmt env (s : Ast.stmt) : bool (* fallthrough continues? *) =
  let bld = env.b in
  match s with
  | Ast.Decl (n, e) ->
    let v, t = expr env e in
    let slot = Builder.alloca bld 8 8 in
    Hashtbl.replace env.vars n slot;
    Hashtbl.replace env.vtypes n t;
    Builder.store bld t ~align:8 v slot;
    true
  | Ast.Assign (n, e) -> (
    match Hashtbl.find_opt env.vars n with
    | None -> err "%s: assignment to undeclared %s" env.fname n
    | Some slot ->
      let want = var_ty env n in
      let v = coerce env (expr env e) want in
      Builder.store bld want ~align:8 v slot;
      true)
  | Ast.StoreI64 (p, e) ->
    let vp = as_ptr env (expr env p) in
    let v = as_int env (expr env e) in
    Builder.store bld I64 ~align:8 v vp;
    true
  | Ast.StoreI32 (p, e) ->
    let vp = as_ptr env (expr env p) in
    let v = as_int env (expr env e) in
    let v32 = Builder.cast bld Trunc ~src_ty:I64 v ~dst_ty:I32 in
    Builder.store bld I32 ~align:4 v32 vp;
    true
  | Ast.StoreF64 (p, e) ->
    let vp = as_ptr env (expr env p) in
    let v = as_f64 env (expr env e) in
    Builder.store bld F64 ~align:8 v vp;
    true
  | Ast.Expr e ->
    ignore (expr env e);
    true
  | Ast.Return eo ->
    (match eo, env.ret with
     | None, None -> Builder.ret bld None
     | Some e, Some t ->
       let v = coerce env (expr env e) t in
       Builder.ret bld (Some v)
     | None, Some _ -> err "%s: missing return value" env.fname
     | Some _, None -> err "%s: unexpected return value" env.fname);
    false
  | Ast.If (c, then_s, else_s) ->
    let cv = as_int env (expr env c) in
    let bit = Builder.icmp bld Ne I64 cv (CInt (I64, 0L)) in
    let bt = Builder.new_block bld in
    let be = Builder.new_block bld in
    let bj = Builder.new_block bld in
    Builder.condbr bld bit bt be;
    Builder.position bld bt;
    let ft = List.fold_left (fun k s -> k && stmt env s) true then_s in
    if ft then Builder.br bld bj;
    Builder.position bld be;
    let fe = List.fold_left (fun k s -> k && stmt env s) true else_s in
    if fe then Builder.br bld bj;
    Builder.position bld bj;
    if not (ft || fe) then begin
      Builder.set_term bld Unreachable;
      false
    end
    else true
  | Ast.While (c, body) ->
    (* rotated form (guard + do-while), like a C compiler's loop
       rotation: `if (c) do { body } while (c);` — this produces the
       single-block loops the unroller and vectorizer recognize, and
       hoists the loop-invariant parts of the condition into the guard
       where GVN can reuse them *)
    let bb = Builder.new_block bld in
    let bx = Builder.new_block bld in
    let cv0 = as_int env (expr env c) in
    let bit0 = Builder.icmp bld Ne I64 cv0 (CInt (I64, 0L)) in
    Builder.condbr bld bit0 bb bx;
    Builder.position bld bb;
    let fb = List.fold_left (fun k s -> k && stmt env s) true body in
    if fb then begin
      let cv = as_int env (expr env c) in
      let bit = Builder.icmp bld Ne I64 cv (CInt (I64, 0L)) in
      Builder.condbr bld bit bb bx
    end;
    Builder.position bld bx;
    true
  | Ast.For (n, init, cond, step, body) ->
    ignore (stmt env (Ast.Decl (n, init)));
    stmt env
      (Ast.While (cond, body @ [ Ast.Assign (n, step) ]))

(** Lower one function. *)
let lower_fn (fsigs : (string, signature) Hashtbl.t) (f : Ast.fn) : func =
  let sg =
    { args = List.map ir_ty f.params; ret = Option.map ir_ty f.ret }
  in
  let b = Builder.create ~name:f.name ~sg in
  let env =
    { b; vars = Hashtbl.create 16; vtypes = Hashtbl.create 16; fsigs;
      fname = f.name; ret = sg.ret }
  in
  let falls = List.fold_left (fun k s -> k && stmt env s) true f.body in
  if falls then begin
    match sg.ret with
    | None -> Builder.ret b None
    | Some _ -> err "%s: control reaches end of non-void function" f.name
  end;
  let fn = Builder.func b in
  Verify.assert_ok ~ctx:("minic lowering of " ^ f.name) fn;
  fn

(** Lower a program to an IR module (no optimization applied). *)
let lower (p : Ast.prog) : modul =
  let fsigs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.fn) ->
      Hashtbl.replace fsigs f.name
        { args = List.map ir_ty f.params; ret = Option.map ir_ty f.ret })
    p;
  { funcs = List.map (lower_fn fsigs) p; globals = [] }
