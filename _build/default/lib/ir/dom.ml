(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm. *)

open Ins

type t = {
  idom : (int, int) Hashtbl.t; (* immediate dominator; entry maps to itself *)
  order : (int, int) Hashtbl.t; (* RPO index *)
  entry : int;
}

let compute (f : func) : t =
  let order_list = Cfg.rpo f in
  let entry = List.hd order_list in
  let order = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace order b i) order_list;
  let preds = Cfg.predecessors f in
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom entry entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while Hashtbl.find order !a > Hashtbl.find order !b do
        a := Hashtbl.find idom !a
      done;
      while Hashtbl.find order !b > Hashtbl.find order !a do
        b := Hashtbl.find idom !b
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let ps =
            List.filter
              (fun p -> Hashtbl.mem order p && Hashtbl.mem idom p)
              (try Hashtbl.find preds b with Not_found -> [])
          in
          match ps with
          | [] -> ()
          | first :: rest ->
            let nd = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom b <> Some nd then begin
              Hashtbl.replace idom b nd;
              changed := true
            end
        end)
      order_list
  done;
  { idom; order; entry }

(** [dominates t a b]: does block [a] dominate block [b]? *)
let dominates t a b =
  let rec up x =
    if x = a then true
    else if x = t.entry then false
    else up (Hashtbl.find t.idom x)
  in
  a = b || up b

let idom t b = if b = t.entry then None else Hashtbl.find_opt t.idom b
