(** Textual form of the IR, close to LLVM assembly syntax. *)

open Ins

let rec value = function
  | V id -> Printf.sprintf "%%%d" id
  | CInt (I1, v) -> if v = 0L then "false" else "true"
  | CInt (_, v) -> Int64.to_string v
  | CF64 f -> Printf.sprintf "%h" f
  | CF32 f -> Printf.sprintf "%hf" f
  | CPtr a -> Printf.sprintf "ptr 0x%x" a
  | CVec (_, vs) ->
    "<" ^ String.concat ", " (List.map value vs) ^ ">"
  | Global g -> "@" ^ g
  | Undef _ -> "undef"

let tv ty v = ty_name ty ^ " " ^ value v

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt"
  | Sge -> "sge" | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let fcmp_name = function
  | Oeq -> "oeq" | One -> "one" | Olt -> "olt" | Ole -> "ole" | Ogt -> "ogt"
  | Oge -> "oge" | Ord -> "ord" | Uno -> "uno"
  | Ueq -> "ueq" | Une -> "une" | Ult -> "ult" | Ule -> "ule"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | SDiv -> "sdiv"
  | SRem -> "srem" | UDiv -> "udiv" | URem -> "urem" | Shl -> "shl"
  | LShr -> "lshr" | AShr -> "ashr" | And -> "and" | Or -> "or" | Xor -> "xor"

let fbinop_name = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"

let cast_name = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext" | Bitcast -> "bitcast"
  | IntToPtr -> "inttoptr" | PtrToInt -> "ptrtoint" | FpToSi -> "fptosi"
  | SiToFp -> "sitofp" | FpExt -> "fpext" | FpTrunc -> "fptrunc"

let instr (i : instr) =
  let lhs =
    match i.ty with
    | Some _ -> Printf.sprintf "%%%d = " i.id
    | None -> ""
  in
  let body =
    match i.op with
    | Bin (o, t, a, b) ->
      Printf.sprintf "%s %s %s, %s" (binop_name o) (ty_name t) (value a)
        (value b)
    | FBin (o, t, a, b) ->
      Printf.sprintf "%s %s %s, %s" (fbinop_name o) (ty_name t) (value a)
        (value b)
    | Icmp (p, t, a, b) ->
      Printf.sprintf "icmp %s %s %s, %s" (icmp_name p) (ty_name t) (value a)
        (value b)
    | Fcmp (p, t, a, b) ->
      Printf.sprintf "fcmp %s %s %s, %s" (fcmp_name p) (ty_name t) (value a)
        (value b)
    | Select (t, c, a, b) ->
      Printf.sprintf "select i1 %s, %s, %s" (value c) (tv t a) (tv t b)
    | Cast (k, st, v, dt) ->
      Printf.sprintf "%s %s to %s" (cast_name k) (tv st v) (ty_name dt)
    | Load (t, p, al) ->
      Printf.sprintf "load %s, ptr %s, align %d" (ty_name t) (value p) al
    | Store (t, v, p, al) ->
      Printf.sprintf "store %s, ptr %s, align %d" (tv t v) (value p) al
    | Gep (base, elts) ->
      let e = function
        | GConst c -> Printf.sprintf "i64 %d" c
        | GScaled (v, s) -> Printf.sprintf "(%s x %d)" (value v) s
      in
      Printf.sprintf "getelementptr i8, ptr %s, %s" (value base)
        (String.concat ", " (List.map e elts))
    | Phi (t, ins) ->
      Printf.sprintf "phi %s %s" (ty_name t)
        (String.concat ", "
           (List.map
              (fun (b, v) -> Printf.sprintf "[ %s, %%bb%d ]" (value v) b)
              ins))
    | CallDirect (n, sg, args) ->
      Printf.sprintf "call %s @%s(%s)"
        (match sg.ret with Some t -> ty_name t | None -> "void")
        n
        (String.concat ", " (List.map2 tv sg.args args))
    | CallPtr (f, sg, args) ->
      Printf.sprintf "call %s %s(%s)"
        (match sg.ret with Some t -> ty_name t | None -> "void")
        (value f)
        (String.concat ", " (List.map2 tv sg.args args))
    | Alloca (sz, al) -> Printf.sprintf "alloca [%d x i8], align %d" sz al
    | ExtractElt (t, v, l) ->
      Printf.sprintf "extractelement %s, i32 %d" (tv t v) l
    | InsertElt (t, v, s, l) ->
      Printf.sprintf "insertelement %s, %s, i32 %d" (tv t v) (value s) l
    | Shuffle (t, a, b, m) ->
      Printf.sprintf "shufflevector %s, %s, <%s>" (tv t a) (value b)
        (String.concat ", "
           (Array.to_list
              (Array.map
                 (fun i -> if i < 0 then "undef" else string_of_int i)
                 m)))
    | Intr (i, args) ->
      Printf.sprintf "call @%s(%s)" (intrinsic_name i)
        (String.concat ", " (List.map value args))
  in
  lhs ^ body

let terminator = function
  | Ret None -> "ret void"
  | Ret (Some v) -> "ret " ^ value v
  | Br b -> Printf.sprintf "br label %%bb%d" b
  | CondBr (c, t, e) ->
    Printf.sprintf "br i1 %s, label %%bb%d, label %%bb%d" (value c) t e
  | Unreachable -> "unreachable"

let block (b : block) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "bb%d:\n" b.bid);
  List.iter
    (fun i -> Buffer.add_string buf ("  " ^ instr i ^ "\n"))
    b.instrs;
  Buffer.add_string buf ("  " ^ terminator b.term ^ "\n");
  Buffer.contents buf

let func (f : func) =
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.map2
         (fun t id -> Printf.sprintf "%s %%%d" (ty_name t) id)
         f.sg.args f.params)
  in
  Buffer.add_string buf
    (Printf.sprintf "define %s @%s(%s)%s {\n"
       (match f.sg.ret with Some t -> ty_name t | None -> "void")
       f.fname params
       (if f.always_inline then " alwaysinline" else ""));
  List.iter (fun b -> Buffer.add_string buf (block b)) f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let modul (m : modul) =
  String.concat "\n"
    (List.map
       (fun (g : global) ->
         Printf.sprintf "@%s = %s global [%d x i8], align %d" g.gname
           (if g.constant then "constant" else "")
           (String.length g.bytes) g.galign)
       m.globals
     @ List.map func m.funcs)

(** Count instructions in a function (a coarse code-size metric used by
    the benchmarks). *)
let size (f : func) =
  List.fold_left (fun n b -> n + List.length b.instrs + 1) 0 f.blocks
