(** Reference interpreter for the IR.  Executes against the same paged
    memory as the x86 emulator, which makes differential testing of the
    lifter possible: run the binary code on {!Obrew_x86.Cpu} and the
    lifted IR here, against the same image, and compare results. *)

open Ins

exception Interp_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Interp_error s)) fmt

type cv =
  | I of int64            (* integer types up to i64, bits truncated *)
  | I128v of int64 * int64 (* lo, hi *)
  | F of float
  | F32v of float          (* value already rounded to single *)
  | P of int
  | Vc of cv array
  | U

type ctx = {
  mem : Obrew_x86.Mem.t;
  modul : modul;
  mutable alloca_sp : int;
  extern : string -> (cv list -> cv option) option;
  resolve_addr : int -> func option;
  globals_addr : (string, int) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
}

let create ?(extern = fun _ -> None) ?(resolve_addr = fun _ -> None)
    ?(max_steps = 100_000_000) ?(alloca_base = 0x6000_0000)
    ~mem (m : modul) =
  { mem; modul = m; alloca_sp = alloca_base; extern; resolve_addr;
    globals_addr = Hashtbl.create 8; steps = 0; max_steps }

let bind_global ctx name addr = Hashtbl.replace ctx.globals_addr name addr

(* ---------- scalar helpers ---------- *)

let bits_mask bits =
  if bits >= 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L

let trunc_bits bits v = Int64.logand v (bits_mask bits)

let sext_bits bits v =
  if bits >= 64 then v
  else
    let sh = 64 - bits in
    Int64.shift_right (Int64.shift_left v sh) sh

let round_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

(* ---------- byte (de)serialization, used by bitcast/load/store ---------- *)

let rec write_cv (buf : Bytes.t) off ty (v : cv) =
  match ty, v with
  | (I1 | I8), I x -> Bytes.set_uint8 buf off (Int64.to_int x land 0xff)
  | I16, I x -> Bytes.set_uint16_le buf off (Int64.to_int x land 0xffff)
  | I32, I x -> Bytes.set_int32_le buf off (Int64.to_int32 x)
  | I64, I x -> Bytes.set_int64_le buf off x
  | Ptr _, P a -> Bytes.set_int64_le buf off (Int64.of_int a)
  | Ptr _, I x -> Bytes.set_int64_le buf off x
  | I128, I128v (lo, hi) ->
    Bytes.set_int64_le buf off lo;
    Bytes.set_int64_le buf (off + 8) hi
  | I128, I x ->
    Bytes.set_int64_le buf off x;
    Bytes.set_int64_le buf (off + 8) 0L
  | F64, F f -> Bytes.set_int64_le buf off (Int64.bits_of_float f)
  | F32, F32v f -> Bytes.set_int32_le buf off (Int32.bits_of_float f)
  | F32, F f -> Bytes.set_int32_le buf off (Int32.bits_of_float f)
  | Vec (n, e), Vc lanes ->
    if Array.length lanes <> n then err "vector lane count";
    let esz = ty_bytes e in
    Array.iteri (fun i lv -> write_cv buf (off + (i * esz)) e lv) lanes
  | t, U ->
    for i = 0 to ty_bytes t - 1 do Bytes.set_uint8 buf (off + i) 0 done
  | t, _ -> err "cannot serialize value as %s" (ty_name t)

let rec read_cv (buf : Bytes.t) off ty : cv =
  match ty with
  | I1 -> I (Int64.of_int (Bytes.get_uint8 buf off land 1))
  | I8 -> I (Int64.of_int (Bytes.get_uint8 buf off))
  | I16 -> I (Int64.of_int (Bytes.get_uint16_le buf off))
  | I32 ->
    I (Int64.logand (Int64.of_int32 (Bytes.get_int32_le buf off)) 0xFFFFFFFFL)
  | I64 -> I (Bytes.get_int64_le buf off)
  | I128 -> I128v (Bytes.get_int64_le buf off, Bytes.get_int64_le buf (off + 8))
  | F64 -> F (Int64.float_of_bits (Bytes.get_int64_le buf off))
  | F32 -> F32v (Int32.float_of_bits (Bytes.get_int32_le buf off))
  | Ptr _ -> P (Int64.to_int (Bytes.get_int64_le buf off))
  | Vec (n, e) ->
    let esz = ty_bytes e in
    Vc (Array.init n (fun i -> read_cv buf (off + (i * esz)) e))

let scratch = Bytes.create 32

let bitcast_cv src_ty v dst_ty =
  Bytes.fill scratch 0 32 '\000';
  write_cv scratch 0 src_ty v;
  read_cv scratch 0 dst_ty

(* ---------- memory ---------- *)

let rec load_mem ctx ty addr : cv =
  let open Obrew_x86 in
  match ty with
  | I1 | I8 -> I (Int64.of_int (Mem.read_u8 ctx.mem addr))
  | I16 -> I (Int64.of_int (Mem.read_u16 ctx.mem addr))
  | I32 -> I (Int64.of_int (Mem.read_u32 ctx.mem addr))
  | I64 -> I (Mem.read_u64 ctx.mem addr)
  | I128 -> I128v (Mem.read_u64 ctx.mem addr, Mem.read_u64 ctx.mem (addr + 8))
  | F64 -> F (Mem.read_f64 ctx.mem addr)
  | F32 -> F32v (Int32.float_of_bits (Int32.of_int (Mem.read_u32 ctx.mem addr)))
  | Ptr _ -> P (Int64.to_int (Mem.read_u64 ctx.mem addr))
  | Vec (n, e) ->
    let esz = ty_bytes e in
    Vc (Array.init n (fun i -> load_mem ctx e (addr + (i * esz))))

let rec store_mem ctx ty addr (v : cv) =
  let open Obrew_x86 in
  match ty, v with
  | (I1 | I8), I x -> Mem.write_u8 ctx.mem addr (Int64.to_int x)
  | I16, I x -> Mem.write_u16 ctx.mem addr (Int64.to_int x)
  | I32, I x -> Mem.write_u32 ctx.mem addr (Int64.to_int x)
  | I64, I x -> Mem.write_u64 ctx.mem addr x
  | I128, I128v (lo, hi) ->
    Mem.write_u64 ctx.mem addr lo;
    Mem.write_u64 ctx.mem (addr + 8) hi
  | F64, F f -> Mem.write_f64 ctx.mem addr f
  | F32, (F32v f | F f) ->
    Mem.write_u32 ctx.mem addr (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF)
  | Ptr _, P a -> Mem.write_u64 ctx.mem addr (Int64.of_int a)
  | Ptr _, I x -> Mem.write_u64 ctx.mem addr x
  | Vec (n, e), Vc lanes ->
    if Array.length lanes <> n then err "vector lane count";
    let esz = ty_bytes e in
    Array.iteri (fun i lv -> store_mem ctx e (addr + (i * esz)) lv) lanes
  | t, U -> store_mem ctx t addr (load_mem ctx t addr) (* undef: keep *)
  | t, _ -> err "cannot store value as %s" (ty_name t)

(* ---------- arithmetic ---------- *)

let as_i = function
  | I x -> x
  | P a -> Int64.of_int a
  | U -> 0L
  | _ -> err "expected integer value"

let as_f = function
  | F f -> f
  | F32v f -> f
  | U -> 0.0
  | _ -> err "expected float value"

let rec eval_bin op ty a b : cv =
  match ty with
  | Vec (n, e) -> (
    match a, b with
    | Vc xa, Vc xb -> Vc (Array.init n (fun i -> eval_bin op e xa.(i) xb.(i)))
    | _ -> err "vector binop on non-vectors")
  | I128 -> (
    let lo v = match v with I128v (l, _) -> l | I x -> x | U -> 0L
                          | _ -> err "i128 operand" in
    let hi v = match v with I128v (_, h) -> h | _ -> 0L in
    match op with
    | And -> I128v (Int64.logand (lo a) (lo b), Int64.logand (hi a) (hi b))
    | Or -> I128v (Int64.logor (lo a) (lo b), Int64.logor (hi a) (hi b))
    | Xor -> I128v (Int64.logxor (lo a) (lo b), Int64.logxor (hi a) (hi b))
    | Add ->
      let l = Int64.add (lo a) (lo b) in
      let carry = if Int64.unsigned_compare l (lo a) < 0 then 1L else 0L in
      I128v (l, Int64.add (Int64.add (hi a) (hi b)) carry)
    | Shl ->
      let n = Int64.to_int (lo b) in
      if n = 0 then a
      else if n < 64 then
        I128v
          ( Int64.shift_left (lo a) n,
            Int64.logor (Int64.shift_left (hi a) n)
              (Int64.shift_right_logical (lo a) (64 - n)) )
      else if n < 128 then I128v (0L, Int64.shift_left (lo a) (n - 64))
      else I128v (0L, 0L)
    | LShr ->
      let n = Int64.to_int (lo b) in
      if n = 0 then a
      else if n < 64 then
        I128v
          ( Int64.logor (Int64.shift_right_logical (lo a) n)
              (Int64.shift_left (hi a) (64 - n)),
            Int64.shift_right_logical (hi a) n )
      else if n < 128 then I128v (Int64.shift_right_logical (hi a) (n - 64), 0L)
      else I128v (0L, 0L)
    | _ -> err "unsupported i128 operation")
  | _ ->
    let bits = ty_bits ty in
    let x = as_i a and y = as_i b in
    let t v = trunc_bits bits v in
    let sx = sext_bits bits x and sy = sext_bits bits y in
    let r =
      match op with
      | Add -> Int64.add x y
      | Sub -> Int64.sub x y
      | Mul -> Int64.mul x y
      | SDiv -> if sy = 0L then err "sdiv by zero" else Int64.div sx sy
      | SRem -> if sy = 0L then err "srem by zero" else Int64.rem sx sy
      | UDiv -> if y = 0L then err "udiv by zero" else Int64.unsigned_div x y
      | URem -> if y = 0L then err "urem by zero" else Int64.unsigned_rem x y
      | Shl ->
        let n = Int64.to_int y in
        if n >= bits || n < 0 then 0L else Int64.shift_left x n
      | LShr ->
        let n = Int64.to_int y in
        if n >= bits || n < 0 then 0L else Int64.shift_right_logical (t x) n
      | AShr ->
        let n = Int64.to_int y in
        if n >= bits || n < 0 then Int64.shift_right sx 63
        else Int64.shift_right sx n
      | And -> Int64.logand x y
      | Or -> Int64.logor x y
      | Xor -> Int64.logxor x y
    in
    I (t r)

let rec eval_fbin op ty a b : cv =
  match ty with
  | Vec (n, e) -> (
    match a, b with
    | Vc xa, Vc xb -> Vc (Array.init n (fun i -> eval_fbin op e xa.(i) xb.(i)))
    | _ -> err "vector fbinop on non-vectors")
  | F64 ->
    let x = as_f a and y = as_f b in
    F (match op with
       | FAdd -> x +. y | FSub -> x -. y | FMul -> x *. y | FDiv -> x /. y)
  | F32 ->
    let x = as_f a and y = as_f b in
    F32v
      (round_f32
         (match op with
          | FAdd -> x +. y | FSub -> x -. y | FMul -> x *. y | FDiv -> x /. y))
  | t -> err "fbinop on %s" (ty_name t)

let eval_icmp p ty a b : cv =
  let bits = match ty with Ptr _ -> 64 | t -> ty_bits t in
  let x = trunc_bits bits (as_i a) and y = trunc_bits bits (as_i b) in
  let sx = sext_bits bits x and sy = sext_bits bits y in
  let r =
    match p with
    | Eq -> x = y
    | Ne -> x <> y
    | Slt -> sx < sy
    | Sle -> sx <= sy
    | Sgt -> sx > sy
    | Sge -> sx >= sy
    | Ult -> Int64.unsigned_compare x y < 0
    | Ule -> Int64.unsigned_compare x y <= 0
    | Ugt -> Int64.unsigned_compare x y > 0
    | Uge -> Int64.unsigned_compare x y >= 0
  in
  I (if r then 1L else 0L)

let eval_fcmp p a b : cv =
  let x = as_f a and y = as_f b in
  let unord = Float.is_nan x || Float.is_nan y in
  let r =
    match p with
    | Oeq -> (not unord) && x = y
    | One -> (not unord) && x <> y
    | Olt -> (not unord) && x < y
    | Ole -> (not unord) && x <= y
    | Ogt -> (not unord) && x > y
    | Oge -> (not unord) && x >= y
    | Ord -> not unord
    | Uno -> unord
    | Ueq -> unord || x = y
    | Une -> unord || x <> y
    | Ult -> unord || x < y
    | Ule -> unord || x <= y
  in
  I (if r then 1L else 0L)

(** Evaluate a cast on a concrete value (also used by the optimizer's
    constant folder). *)
let eval_cast k st (x : cv) dt : cv =
  match k with
  | Bitcast -> bitcast_cv st x dt
  | Trunc -> (
    match x with
    | I128v (lo, _) -> I (trunc_bits (ty_bits dt) lo)
    | I v -> I (trunc_bits (ty_bits dt) v)
    | U -> U
    | _ -> err "trunc of non-integer")
  | Zext -> (
    match x, dt with
    | I v, I128 -> I128v (v, 0L)
    | I v, _ -> I (trunc_bits (ty_bits dt) v)
    | U, _ -> U
    | _ -> err "zext of non-integer")
  | Sext -> (
    match x with
    | I v ->
      let s = sext_bits (ty_bits st) v in
      if dt = I128 then I128v (s, Int64.shift_right s 63)
      else I (trunc_bits (ty_bits dt) s)
    | U -> U
    | _ -> err "sext of non-integer")
  | IntToPtr -> (
    match x with
    | I v -> P (Int64.to_int v)
    | P _ -> x
    | U -> U
    | _ -> err "inttoptr of non-integer")
  | PtrToInt -> (
    match x with
    | P a -> I (trunc_bits (ty_bits dt) (Int64.of_int a))
    | I v -> I (trunc_bits (ty_bits dt) v)
    | U -> U
    | _ -> err "ptrtoint of non-pointer")
  | FpToSi ->
    let f = as_f x in
    I (trunc_bits (ty_bits dt) (Int64.of_float f))
  | SiToFp ->
    let v = sext_bits (ty_bits st) (as_i x) in
    if dt = F32 then F32v (round_f32 (Int64.to_float v))
    else F (Int64.to_float v)
  | FpExt -> F (as_f x)
  | FpTrunc -> F32v (round_f32 (as_f x))

let popcount64 v =
  let rec go v acc = if v = 0L then acc
    else go (Int64.logand v (Int64.sub v 1L)) (acc + 1)
  in
  go v 0

(* ---------- the machine ---------- *)

let rec run_func ctx (f : func) (args : cv list) : cv option =
  let env : (int, cv) Hashtbl.t = Hashtbl.create 64 in
  (try List.iter2 (fun id v -> Hashtbl.replace env id v) f.params args
   with Invalid_argument _ ->
     err "%s: expected %d arguments, got %d" f.fname
       (List.length f.params) (List.length args));
  let saved_sp = ctx.alloca_sp in
  let eval v =
    match v with
    | V id -> (
      match Hashtbl.find_opt env id with
      | Some c -> c
      | None -> err "%s: %%%d evaluated before definition" f.fname id)
    | CInt (t, x) ->
      if t = I128 then I128v (x, Int64.shift_right x 63)
      else I (trunc_bits (ty_bits t) x)
    | CF64 f -> F f
    | CF32 f -> F32v (round_f32 f)
    | CPtr a -> P a
    | CVec (Vec (_, _), vs) ->
      Vc (Array.of_list
            (List.map
               (fun v ->
                 match v with
                 | CInt (t, x) -> I (trunc_bits (ty_bits t) x)
                 | CF64 f -> F f
                 | CF32 f -> F32v (round_f32 f)
                 | Undef _ -> U
                 | _ -> err "unsupported vector constant")
               vs))
    | CVec _ -> err "malformed vector constant"
    | Global g -> (
      match Hashtbl.find_opt ctx.globals_addr g with
      | Some a -> P a
      | None -> err "global @%s has no address bound" g)
    | Undef _ -> U
  in
  let as_ptr v = match eval v with
    | P a -> a
    | I x -> Int64.to_int x
    | U -> err "undef pointer dereference"
    | _ -> err "expected pointer"
  in
  let exec_call sg callee args =
    let argv = List.map eval args in
    match callee with
    | `Name n -> (
      match List.find_opt (fun g -> g.fname = n) ctx.modul.funcs with
      | Some g -> run_func ctx g argv
      | None -> (
        match ctx.extern n with
        | Some h -> h argv
        | None -> err "call to unknown function @%s" n))
    | `Addr a -> (
      match ctx.resolve_addr a with
      | Some g -> run_func ctx g argv
      | None -> err "call to unresolved address 0x%x" a)
    | `Value v -> (
      let a =
        match eval v with
        | P a -> a
        | I x -> Int64.to_int x
        | _ -> err "indirect call through non-pointer"
      in
      match ctx.resolve_addr a with
      | Some g -> run_func ctx g argv
      | None -> err "call to unresolved address 0x%x" a)
    |> fun r -> ignore sg; r
  in
  let exec_instr (i : instr) =
    ctx.steps <- ctx.steps + 1;
    if ctx.steps > ctx.max_steps then err "interpreter step limit exceeded";
    let result =
      match i.op with
      | Bin (op, t, a, b) -> Some (eval_bin op t (eval a) (eval b))
      | FBin (op, t, a, b) -> Some (eval_fbin op t (eval a) (eval b))
      | Icmp (p, t, a, b) -> Some (eval_icmp p t (eval a) (eval b))
      | Fcmp (p, _, a, b) -> Some (eval_fcmp p (eval a) (eval b))
      | Select (_, c, a, b) ->
        Some (if as_i (eval c) <> 0L then eval a else eval b)
      | Cast (k, st, v, dt) -> Some (eval_cast k st (eval v) dt)
      | Load (t, p, _) -> Some (load_mem ctx t (as_ptr p))
      | Store (t, v, p, _) ->
        store_mem ctx t (as_ptr p) (eval v);
        None
      | Gep (base, elts) ->
        let a =
          List.fold_left
            (fun acc e ->
              match e with
              | GConst c -> acc + c
              | GScaled (v, s) -> acc + (Int64.to_int (as_i (eval v)) * s))
            (as_ptr base) elts
        in
        Some (P a)
      | Phi _ -> err "phi reached in straight-line execution"
      | CallDirect (n, sg, args) -> exec_call sg (`Name n) args
      | CallPtr (c, sg, args) -> (
        match c with
        | CPtr a -> exec_call sg (`Addr a) args
        | v -> exec_call sg (`Value v) args)
      | Alloca (size, align) ->
        let sp = (ctx.alloca_sp - size) land lnot (align - 1) in
        ctx.alloca_sp <- sp;
        Some (P sp)
      | ExtractElt (_, v, l) -> (
        match eval v with
        | Vc lanes -> Some lanes.(l)
        | U -> Some U
        | _ -> err "extractelement of non-vector")
      | InsertElt (t, v, s, l) -> (
        let lanes =
          match eval v with
          | Vc lanes -> Array.copy lanes
          | U ->
            (match t with
             | Vec (n, _) -> Array.make n U
             | _ -> err "insertelement type")
          | _ -> err "insertelement of non-vector"
        in
        lanes.(l) <- eval s;
        Some (Vc lanes))
      | Shuffle (_, a, b, mask) ->
        (* infer the source lane count from whichever operand is concrete *)
        let n =
          match eval a, eval b with
          | Vc l, _ | _, Vc l -> Array.length l
          | _ -> Array.length mask
        in
        let lanes_of v =
          match eval v with
          | Vc l -> l
          | U -> Array.make n U
          | _ -> err "shufflevector of non-vector"
        in
        let la = lanes_of a and lb = lanes_of b in
        Some
          (Vc
             (Array.map
                (fun i ->
                  if i < 0 then U
                  else if i < n then la.(i)
                  else lb.(i - n))
                mask))
      | Intr (intr, args) -> (
        let argv = List.map eval args in
        match intr, argv with
        | Ctpop t, [ I v ] ->
          Some (I (Int64.of_int (popcount64 (trunc_bits (ty_bits t) v))))
        | Sqrt _, [ x ] -> Some (F (sqrt (as_f x)))
        | Fabs _, [ x ] -> Some (F (Float.abs (as_f x)))
        | MinNum _, [ x; y ] ->
          let a = as_f x and b = as_f y in
          Some (F (if a < b then a else b))
        | MaxNum _, [ x; y ] ->
          let a = as_f x and b = as_f y in
          Some (F (if a > b then a else b))
        | _ -> err "bad intrinsic call")
    in
    match result with
    | Some v -> Hashtbl.replace env i.id v
    | None -> ()
  in
  (* block-level driver *)
  let rec run_block (b : block) (come_from : int) : cv option =
    (* phase 1: evaluate all phis against the predecessor environment *)
    let phis, rest =
      let rec split acc = function
        | ({ op = Phi _; _ } as p) :: tl -> split (p :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      split [] b.instrs
    in
    let phi_values =
      List.map
        (fun i ->
          match i.op with
          | Phi (_, ins) -> (
            match List.assoc_opt come_from ins with
            | Some v -> (i.id, eval v)
            | None ->
              err "%s: bb%d phi %%%d missing input for bb%d" f.fname b.bid
                i.id come_from)
          | _ -> assert false)
        phis
    in
    List.iter (fun (id, v) -> Hashtbl.replace env id v) phi_values;
    List.iter exec_instr rest;
    ctx.steps <- ctx.steps + 1;
    if ctx.steps > ctx.max_steps then err "interpreter step limit exceeded";
    match b.term with
    | Ret None -> None
    | Ret (Some v) -> Some (eval v)
    | Br t -> run_block (find_block f t) b.bid
    | CondBr (c, t, e) ->
      let tgt = if as_i (eval c) <> 0L then t else e in
      run_block (find_block f tgt) b.bid
    | Unreachable -> err "%s: reached unreachable in bb%d" f.fname b.bid
  in
  let result = run_block (entry_block f) (-1) in
  ctx.alloca_sp <- saved_sp;
  result

let run ctx name args =
  run_func ctx (find_func ctx.modul name) args
