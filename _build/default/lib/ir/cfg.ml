(** Control-flow graph utilities: predecessor maps, reverse postorder,
    reachability. *)

open Ins

(** Map from block id to its predecessors' ids (in deterministic
    order), considering only reachable blocks. *)
let predecessors (f : func) : (int, int list) Hashtbl.t
    =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.bid []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (cur @ [ b.bid ]))
        (successors b.term))
    f.blocks;
  preds

(** Blocks reachable from the entry. *)
let reachable (f : func) : (int, unit) Hashtbl.t =
  let seen = Hashtbl.create 16 in
  let rec go bid =
    if not (Hashtbl.mem seen bid) then begin
      Hashtbl.replace seen bid ();
      List.iter go (successors (find_block f bid).term)
    end
  in
  (match f.blocks with b :: _ -> go b.bid | [] -> ());
  seen

(** Reverse postorder of reachable blocks, entry first. *)
let rpo (f : func) : int list =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go bid =
    if not (Hashtbl.mem seen bid) then begin
      Hashtbl.replace seen bid ();
      List.iter go (successors (find_block f bid).term);
      order := bid :: !order
    end
  in
  (match f.blocks with b :: _ -> go b.bid | [] -> ());
  !order

(** Drop unreachable blocks and prune phi inputs from removed or
    non-predecessor blocks. *)
let prune_unreachable (f : func) =
  let live = reachable f in
  f.blocks <- List.filter (fun b -> Hashtbl.mem live b.bid) f.blocks;
  let preds = predecessors f in
  List.iter
    (fun b ->
      let ps = try Hashtbl.find preds b.bid with Not_found -> [] in
      b.instrs <-
        List.map
          (fun i ->
            match i.op with
            | Phi (t, ins) ->
              { i with
                op = Phi (t, List.filter (fun (p, _) -> List.mem p ps) ins)
              }
            | _ -> i)
          b.instrs)
    f.blocks
