lib/ir/cfg.ml: Hashtbl Ins List
