lib/ir/verify.ml: Array Cfg Dom Hashtbl Ins List Pp_ir Printf String
