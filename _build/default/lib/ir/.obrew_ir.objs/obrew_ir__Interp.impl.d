lib/ir/interp.ml: Array Bytes Float Hashtbl Ins Int32 Int64 List Mem Obrew_x86 Printf
