lib/ir/ins.ml: List Printf
