lib/ir/pp_ir.ml: Array Buffer Ins Int64 List Printf String
