lib/ir/dom.ml: Cfg Hashtbl Ins List
