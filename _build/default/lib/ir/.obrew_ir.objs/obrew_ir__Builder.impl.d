lib/ir/builder.ml: Ins List
