(** Constant folding: evaluate operations whose operands are all
    constants, reusing the reference interpreter's evaluators so that
    folding and execution can never disagree. *)

open Obrew_ir
open Ins

let rec cv_of_const (v : value) : Interp.cv option =
  match v with
  | CInt (I128, x) -> Some (Interp.I128v (x, Int64.shift_right x 63))
  | CInt (t, x) -> Some (Interp.I (Interp.trunc_bits (ty_bits t) x))
  | CF64 f -> Some (Interp.F f)
  | CF32 f -> Some (Interp.F32v (Interp.round_f32 f))
  | CPtr a -> Some (Interp.P a)
  | CVec (_, vs) ->
    let rec lanes acc = function
      | [] -> Some (List.rev acc)
      | v :: tl -> (
        match cv_of_const v with
        | Some c -> lanes (c :: acc) tl
        | None -> None)
    in
    (match lanes [] vs with
     | Some l -> Some (Interp.Vc (Array.of_list l))
     | None -> None)
  | V _ | Global _ | Undef _ -> None

let rec const_of_cv (t : ty) (c : Interp.cv) : value option =
  match t, c with
  | Ptr _, Interp.P a -> Some (CPtr a)
  | Ptr _, Interp.I x -> Some (CPtr (Int64.to_int x))
  | _, Interp.I x -> Some (CInt (t, x))
  | I128, Interp.I128v (lo, hi) ->
    if hi = Int64.shift_right lo 63 then Some (CInt (I128, lo)) else None
  | F64, Interp.F f -> Some (CF64 f)
  | F32, (Interp.F32v f | Interp.F f) -> Some (CF32 f)
  | Vec (n, e), Interp.Vc lanes when Array.length lanes = n ->
    let rec go acc i =
      if i = n then Some (CVec (t, List.rev acc))
      else
        match const_of_cv e lanes.(i) with
        | Some v -> go (v :: acc) (i + 1)
        | None -> None
    in
    go [] 0
  | _, Interp.U -> Some (Undef t)
  | _ -> None

let is_const v = cv_of_const v <> None

(** Try to evaluate [op] to a constant value.  Returns [None] when any
    operand is non-constant or the result is not representable. *)
let fold_op (rty : ty option) (op : op) : value option =
  let c2 f a b k =
    match cv_of_const a, cv_of_const b with
    | Some x, Some y -> (try k (f x y) with Interp.Interp_error _ -> None)
    | _ -> None
  in
  match op, rty with
  | Bin (o, t, a, b), Some rt ->
    c2 (Interp.eval_bin o t) a b (fun r -> const_of_cv rt r)
  | FBin (o, t, a, b), Some rt ->
    c2 (Interp.eval_fbin o t) a b (fun r -> const_of_cv rt r)
  | Icmp (p, t, a, b), _ ->
    c2 (Interp.eval_icmp p t) a b (fun r -> const_of_cv I1 r)
  | Fcmp (p, _, a, b), _ ->
    c2 (Interp.eval_fcmp p) a b (fun r -> const_of_cv I1 r)
  | Select (_, c, a, b), _ -> (
    match c with
    | CInt (I1, 1L) -> Some a
    | CInt (I1, 0L) -> Some b
    | _ -> if a = b && is_const a then Some a else None)
  | Cast (k, st, v, dt), _ -> (
    match cv_of_const v with
    | Some x -> (
      try const_of_cv dt (Interp.eval_cast k st x dt)
      with Interp.Interp_error _ -> None)
    | None -> None)
  | Gep (base, elts), _ -> (
    match cv_of_const base with
    | Some (Interp.P a) ->
      let rec go acc = function
        | [] -> Some (CPtr acc)
        | GConst c :: tl -> go (acc + c) tl
        | GScaled (v, s) :: tl -> (
          match cv_of_const v with
          | Some (Interp.I x) -> go (acc + (Int64.to_int x * s)) tl
          | _ -> None)
      in
      go a elts
    | _ -> None)
  | ExtractElt (_, v, l), Some rt -> (
    match cv_of_const v with
    | Some (Interp.Vc lanes) when l < Array.length lanes ->
      const_of_cv rt lanes.(l)
    | _ -> None)
  | InsertElt (t, v, s, l), _ -> (
    match cv_of_const v, cv_of_const s with
    | Some (Interp.Vc lanes), Some sc ->
      let lanes = Array.copy lanes in
      lanes.(l) <- sc;
      const_of_cv t (Interp.Vc lanes)
    | _ -> None)
  | Shuffle (rt, a, b, mask), _ -> (
    match cv_of_const a, cv_of_const b with
    | Some (Interp.Vc la), Some (Interp.Vc lb) ->
      const_of_cv rt
        (Interp.Vc
           (Array.map
              (fun i ->
                if i < 0 then Interp.U
                else if i < Array.length la then la.(i)
                else lb.(i - Array.length la))
              mask))
    | _ -> None)
  | Intr (Ctpop t, [ v ]), Some rt -> (
    match cv_of_const v with
    | Some (Interp.I x) ->
      const_of_cv rt
        (Interp.I
           (Int64.of_int (Interp.popcount64 (Interp.trunc_bits (ty_bits t) x))))
    | _ -> None)
  | Intr (Sqrt _, [ v ]), Some rt -> (
    match cv_of_const v with
    | Some (Interp.F f) -> const_of_cv rt (Interp.F (sqrt f))
    | _ -> None)
  | Intr (Fabs _, [ v ]), Some rt -> (
    match cv_of_const v with
    | Some (Interp.F f) -> const_of_cv rt (Interp.F (Float.abs f))
    | _ -> None)
  | _ -> None
