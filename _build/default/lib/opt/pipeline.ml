(** The -O3-style pass pipeline (Sec. IV: "the standard optimization
    pipeline with level 3 ... is applied", optionally with
    floating-point optimizations as with -ffast-math). *)

open Obrew_ir
open Ins

type options = {
  level : int;                  (* 0..3 *)
  fast_math : bool;             (* -ffast-math analogue *)
  force_vector_width : int option; (* -force-vector-width=N analogue *)
  vector_aligned : bool;        (* emit aligned vector accesses (GCC-style
                                   alignment handling) vs unaligned (JIT) *)
  inline_threshold : int;
  resolve_addr : int -> string option; (* for inlining lifted call targets *)
  (* constant memory oracle for fixation/setmem-style specialization *)
  const_load : addr:int -> len:int -> string option;
  verify_each : bool;           (* run the verifier after each pass *)
}

let o3 =
  { level = 3; fast_math = true; force_vector_width = None;
    vector_aligned = false; inline_threshold = Inline.default_threshold;
    resolve_addr = (fun _ -> None);
    const_load = (fun ~addr:_ ~len:_ -> None); verify_each = false }

let o0 = { o3 with level = 0 }

(** Per-pass change statistics of the last {!run} (for the pass-
    ablation study the paper motivates in Sec. I/VIII). *)
type stats = { mutable pass_changes : (string * int) list }

let stats = { pass_changes = [] }

let bump name =
  stats.pass_changes <-
    (match List.assoc_opt name stats.pass_changes with
     | Some n -> (name, n + 1) :: List.remove_assoc name stats.pass_changes
     | None -> (name, 1) :: stats.pass_changes)

(** Optimize one function in place. *)
let run_func ?(opts = o3) (m : modul) (f : func) : unit =
  if opts.level = 0 then ()
  else begin
    let glookup name = List.find_opt (fun g -> g.gname = name) m.globals in
    let check name = if opts.verify_each then Verify.assert_ok ~ctx:name f in
    let pass name p = if p () then begin bump name; check name end in
    let instcombine () =
      Instcombine.run ~fast_math:opts.fast_math ~const_load:opts.const_load
        ~global_lookup:glookup f
    in
    let inline_cfg =
      { Inline.threshold = opts.inline_threshold;
        resolve_addr = opts.resolve_addr }
    in
    (* main scalar pipeline to fixpoint *)
    let round () =
      let changed = ref false in
      let p name g = if g () then begin changed := true; bump name; check name end in
      p "simplifycfg" (fun () -> Simplify_cfg.run f);
      p "instcombine" instcombine;
      p "mem2reg" (fun () -> Mem2reg.run f);
      p "gvn" (fun () -> Gvn.run f);
      p "dce" (fun () -> Dce.run f);
      !changed
    in
    pass "inline" (fun () -> Inline.run ~config:inline_cfg m f);
    let budget = ref 12 in
    while round () && !budget > 0 do decr budget done;
    (* loop transforms, then re-run the scalar pipeline *)
    if opts.level >= 2 then begin
      pass "licm" (fun () -> Licm.run f);
      let budget = ref 6 in
      while round () && !budget > 0 do decr budget done;
      pass "unroll" (fun () -> Unroll.run ~fast_math:opts.fast_math f);
      (* clean up after unrolling so remaining loops are canonical
         before vectorization *)
      let budget = ref 12 in
      while round () && !budget > 0 do decr budget done;
      (match opts.force_vector_width with
       | Some w when opts.level >= 2 ->
         pass "vectorize" (fun () ->
             Vectorize.run ~width:w ~aligned:opts.vector_aligned f)
       | _ -> ());
      let budget = ref 12 in
      while round () && !budget > 0 do decr budget done
    end
  end

(** Optimize every function of the module. *)
let run ?(opts = o3) (m : modul) : unit =
  stats.pass_changes <- [];
  List.iter (run_func ~opts m) m.funcs
