lib/opt/mem2reg.ml: Cfg Dom Hashtbl Ins Int64 List Obrew_ir Option Queue Util
