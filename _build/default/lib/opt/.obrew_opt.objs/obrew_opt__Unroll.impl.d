lib/opt/unroll.ml: Cfg Dce Dom Hashtbl Ins Instcombine Int64 Interp List Obrew_ir Option Simplify_cfg Util
