lib/opt/dce.ml: Hashtbl Ins List Obrew_ir Queue Util
