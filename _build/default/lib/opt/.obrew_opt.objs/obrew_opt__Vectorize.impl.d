lib/opt/vectorize.ml: Cfg Hashtbl Ins List Obrew_ir Option Util
