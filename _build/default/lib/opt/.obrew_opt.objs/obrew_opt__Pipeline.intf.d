lib/opt/pipeline.mli: Ins Obrew_ir
