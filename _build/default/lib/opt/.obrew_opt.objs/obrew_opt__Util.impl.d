lib/opt/util.ml: Hashtbl Ins List Obrew_ir Option Verify
