lib/opt/pipeline.ml: Dce Gvn Inline Ins Instcombine Licm List Mem2reg Obrew_ir Simplify_cfg Unroll Vectorize Verify
