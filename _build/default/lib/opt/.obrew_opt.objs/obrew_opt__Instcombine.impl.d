lib/opt/instcombine.ml: Array Bytes Fold Hashtbl Ins Int64 Interp List Obrew_ir String Util
