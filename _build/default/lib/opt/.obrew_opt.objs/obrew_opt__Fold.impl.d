lib/opt/fold.ml: Array Float Ins Int64 Interp List Obrew_ir
