lib/opt/licm.ml: Cfg Dom Hashtbl Ins List Obrew_ir Option
