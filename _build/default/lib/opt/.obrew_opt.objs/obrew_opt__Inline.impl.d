lib/opt/inline.ml: Hashtbl Ins List Obrew_ir Option Pp_ir Util
