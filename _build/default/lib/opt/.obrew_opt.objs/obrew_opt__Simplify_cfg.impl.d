lib/opt/simplify_cfg.ml: Cfg Hashtbl Ins List Obrew_ir Util
