lib/opt/gvn.ml: Cfg Dom Hashtbl Ins List Obrew_ir Option Util
