lib/core/modes.mli: Image Obrew_ir Obrew_lifter Obrew_opt Obrew_stencil Obrew_x86
