lib/core/modes.ml: Api Builder Cpu Image Ins Int64 Jit Lift List Mem Obrew_backend Obrew_dbrew Obrew_ir Obrew_lifter Obrew_minic Obrew_opt Obrew_stencil Obrew_x86 Pipeline Stencil Unix Verify
