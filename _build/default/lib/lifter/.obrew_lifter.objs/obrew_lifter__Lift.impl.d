lib/lifter/lift.ml: Array Builder Decode Hashtbl Ins Insn Int64 List Obrew_ir Obrew_x86 Option Printf Queue Reg
