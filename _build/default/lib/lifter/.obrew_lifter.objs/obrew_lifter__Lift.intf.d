lib/lifter/lift.mli: Obrew_ir
