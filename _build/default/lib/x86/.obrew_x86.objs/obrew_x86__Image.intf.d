lib/x86/image.mli: Cost Cpu Hashtbl Insn
