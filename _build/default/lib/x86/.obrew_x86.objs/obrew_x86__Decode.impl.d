lib/x86/decode.ml: Char Insn Int64 List Printf Reg String
