lib/x86/encode.ml: Buffer Char Hashtbl Insn Int64 List Printf Reg String
