lib/x86/cpu.ml: Array Cost Decode Float Hashtbl Insn Int32 Int64 List Mem Printf Reg
