lib/x86/cost.ml: Insn
