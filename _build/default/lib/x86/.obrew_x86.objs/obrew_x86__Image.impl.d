lib/x86/image.ml: Array Cpu Decode Encode Hashtbl Insn Int64 List Mem Reg String
