lib/x86/mem.ml: Bytes Char Hashtbl Int32 Int64 String
