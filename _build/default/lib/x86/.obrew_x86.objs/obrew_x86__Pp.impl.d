lib/x86/pp.ml: Buffer Insn Int64 List Printf Reg String
