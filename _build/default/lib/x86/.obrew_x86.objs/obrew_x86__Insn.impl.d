lib/x86/insn.ml: Printf Reg
