(** General purpose registers of x86-64, in hardware encoding order. *)

type gpr =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

let all_gprs =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI;
    R8; R9; R10; R11; R12; R13; R14; R15 ]

let index = function
  | RAX -> 0 | RCX -> 1 | RDX -> 2 | RBX -> 3
  | RSP -> 4 | RBP -> 5 | RSI -> 6 | RDI -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let of_index = function
  | 0 -> RAX | 1 -> RCX | 2 -> RDX | 3 -> RBX
  | 4 -> RSP | 5 -> RBP | 6 -> RSI | 7 -> RDI
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Reg.of_index %d" n)

let equal (a : gpr) (b : gpr) = a = b
let compare (a : gpr) (b : gpr) = Stdlib.compare (index a) (index b)

let name64 = function
  | RAX -> "rax" | RCX -> "rcx" | RDX -> "rdx" | RBX -> "rbx"
  | RSP -> "rsp" | RBP -> "rbp" | RSI -> "rsi" | RDI -> "rdi"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

let name32 = function
  | RAX -> "eax" | RCX -> "ecx" | RDX -> "edx" | RBX -> "ebx"
  | RSP -> "esp" | RBP -> "ebp" | RSI -> "esi" | RDI -> "edi"
  | r -> name64 r ^ "d"

let name16 = function
  | RAX -> "ax" | RCX -> "cx" | RDX -> "dx" | RBX -> "bx"
  | RSP -> "sp" | RBP -> "bp" | RSI -> "si" | RDI -> "di"
  | r -> name64 r ^ "w"

let name8 = function
  | RAX -> "al" | RCX -> "cl" | RDX -> "dl" | RBX -> "bl"
  | RSP -> "spl" | RBP -> "bpl" | RSI -> "sil" | RDI -> "dil"
  | r -> name64 r ^ "b"

let name8h = function
  | RAX -> "ah" | RCX -> "ch" | RDX -> "dh" | RBX -> "bh"
  | r -> invalid_arg ("Reg.name8h: no high-byte form of " ^ name64 r)

(* System V AMD64 ABI *)
let arg_regs = [ RDI; RSI; RDX; RCX; R8; R9 ]
let callee_saved = [ RBX; RBP; R12; R13; R14; R15 ]
let caller_saved = [ RAX; RCX; RDX; RSI; RDI; R8; R9; R10; R11 ]

(** SSE registers are identified by their hardware index 0..15. *)
type xmm = int

let xmm_name (x : xmm) = Printf.sprintf "xmm%d" x
