lib/dbrew/api.mli: Image Insn Obrew_x86 Rewriter
