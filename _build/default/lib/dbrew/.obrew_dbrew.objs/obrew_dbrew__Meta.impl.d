lib/dbrew/meta.ml: Array Hashtbl Insn List Obrew_x86 Option Reg
