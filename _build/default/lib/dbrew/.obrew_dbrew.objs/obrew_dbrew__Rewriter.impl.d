lib/dbrew/rewriter.ml: Array Cpu Decode Encode Hashtbl Insn Int64 List Mem Meta Obrew_x86 Option Pp Printf Queue Reg
