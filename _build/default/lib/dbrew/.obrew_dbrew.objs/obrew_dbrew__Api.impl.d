lib/dbrew/api.ml: Cpu Image Insn List Obrew_x86 Rewriter
