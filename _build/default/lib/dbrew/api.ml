(** The DBrew user API, mirroring Fig. 2/3 of the paper:

    {[
      let r = Api.dbrew_new img func in
      Api.dbrew_set_par r 1 42L;
      Api.dbrew_set_mem r start stop;
      let newfunc = Api.dbrew_rewrite r in
      (* call newfunc instead of func *)
    ]}

    Rewriting may fail on unsupported constructs; the default error
    handler simply returns the original function, ensuring correctness
    (Sec. II).  A custom handler can be installed instead. *)

open Obrew_x86

type t = {
  img : Image.t;
  entry : int;
  cfg : Rewriter.config;
  mutable error_handler : (string -> int) option;
  mutable last_error : string option;
  mutable emitted_items : Insn.item list; (* for inspection/dumps *)
}

(** Create a rewriter for the function at [entry]. *)
let dbrew_new (img : Image.t) (entry : int) : t =
  { img; entry; cfg = Rewriter.default_config (); error_handler = None;
    last_error = None; emitted_items = [] }

(** Fix parameter [i] (0-based) to [v] — Fig. 3 [dbrew_setpar]. *)
let dbrew_set_par r i v =
  r.cfg.Rewriter.params <- (i, v) :: List.remove_assoc i r.cfg.Rewriter.params

(** Declare [lo, hi) as fixed memory — Fig. 3 [dbrew_setmem]: values
    read from this range are assumed constant and folded. *)
let dbrew_set_mem r lo hi =
  r.cfg.Rewriter.mem_ranges <- (lo, hi) :: r.cfg.Rewriter.mem_ranges

(** Bound for call inlining depth. *)
let dbrew_set_inline_depth r d = r.cfg.Rewriter.inline_depth <- d

(** Custom error handler: receives the failure message, returns the
    function address to use instead. *)
let dbrew_set_error_handler r h = r.error_handler <- Some h

(** Rewrite; returns the new function's address (a drop-in replacement
    with the same signature).  On failure the error handler decides;
    the default returns the original function. *)
let dbrew_rewrite (r : t) : int =
  match
    Rewriter.rewrite ~cfg:r.cfg ~mem:r.img.Image.cpu.Cpu.mem ~entry:r.entry
  with
  | items ->
    r.emitted_items <- items;
    Image.install_code r.img items
  | exception Rewriter.Rewrite_failed msg -> (
    r.last_error <- Some msg;
    match r.error_handler with
    | Some h -> h msg
    | None -> r.entry (* default: fall back to the original *))

(** The rewritten code of the last successful {!dbrew_rewrite}, for
    dumps (Fig. 8). *)
let dbrew_last_code r = r.emitted_items
