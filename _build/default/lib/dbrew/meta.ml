(** Meta-state for DBrew's specializing emulation: which registers,
    flags and stack slots hold compile-time-known values. *)

open Obrew_x86
open Insn

(** Value lattice for a register.  [RspOff c] is the symbolic value
    "entry rsp + c" used to track the frame. *)
type mval =
  | Known of int64
  | RspOff of int
  | Unknown

type mflag = FK of bool | FU

type t = {
  regs : mval array;      (* 16 GPRs *)
  mat : bool array;       (* is the known value materialized in the
                             emitted code's register? *)
  flags : mflag array;    (* zf sf cf of pf af *)
  mutable slots : (int * mval) list; (* stack frame: offset -> value *)
  mutable cmp_w : width option; (* for sanity only *)
}

let zf = 0
let sf = 1
let cf = 2
let of_ = 3
let pf = 4
let af = 5

let create () =
  let s =
    { regs = Array.make 16 Unknown; mat = Array.make 16 true;
      flags = Array.make 6 FU; slots = []; cmp_w = None }
  in
  s.regs.(Reg.index Reg.RSP) <- RspOff 0;
  s

let copy s =
  { regs = Array.copy s.regs; mat = Array.copy s.mat;
    flags = Array.copy s.flags; slots = s.slots; cmp_w = s.cmp_w }

let get s r = s.regs.(Reg.index r)

let set s r v =
  s.regs.(Reg.index r) <- v;
  s.mat.(Reg.index r) <- (match v with Unknown -> true | _ -> false)

let set_materialized s r =
  s.mat.(Reg.index r) <- true

let forget_flags s = Array.fill s.flags 0 6 FU

let slot_get s off =
  match List.assoc_opt off s.slots with
  | Some v -> v
  | None -> Unknown

let slot_set s off v = s.slots <- (off, v) :: List.remove_assoc off s.slots

(* digest for trace-point deduplication; slots sorted for stability *)
let digest s (pc : int) : int =
  let slots = List.sort compare s.slots in
  Hashtbl.hash (pc, Array.to_list s.regs, Array.to_list s.flags, slots)

let equal_at (a : t) (b : t) =
  a.regs = b.regs && a.flags = b.flags
  && List.sort compare a.slots = List.sort compare b.slots

(* condition evaluation over known flags *)
let cond s (c : cc) : bool option =
  let f i = match s.flags.(i) with FK b -> Some b | FU -> None in
  let ( &&* ) a b =
    match a, b with Some x, Some y -> Some (x && y) | _ -> None
  in
  let ( ||* ) a b =
    match a, b with Some x, Some y -> Some (x || y) | _ -> None
  in
  let notp = Option.map not in
  match c with
  | E -> f zf
  | NE -> notp (f zf)
  | B -> f cf
  | AE -> notp (f cf)
  | BE -> f cf ||* f zf
  | A -> notp (f cf ||* f zf)
  | S -> f sf
  | NS -> notp (f sf)
  | P -> f pf
  | NP -> notp (f pf)
  | O -> f of_
  | NO -> notp (f of_)
  | L -> Option.map (fun (a, b) -> a <> b)
           (match f sf, f of_ with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
  | GE -> Option.map (fun (a, b) -> a = b)
            (match f sf, f of_ with
             | Some a, Some b -> Some (a, b)
             | _ -> None)
  | LE ->
    (f zf ||* (match f sf, f of_ with
               | Some a, Some b -> Some (a <> b)
               | _ -> None))
  | G ->
    (notp (f zf) &&* (match f sf, f of_ with
                      | Some a, Some b -> Some (a = b)
                      | _ -> None))

(* ------------------------------------------------------------------ *)
(* State compatibility and widening (bounded variant generation)       *)
(* ------------------------------------------------------------------ *)

(** Can a trace with state [s] jump into code emitted under state
    [target]?  Returns the registers that must be materialized first
    (the target code reads their real values), or [None] when the
    states are incompatible. *)
let compatible ~(target : t) (s : t) : Reg.gpr list option =
  let ok = ref true in
  let mats = ref [] in
  for i = 0 to 15 do
    (match target.regs.(i), s.regs.(i) with
     | Known tv, Known sv when tv = sv ->
       (* the target may rely on the real register *)
       if target.mat.(i) && not s.mat.(i) then
         mats := Reg.of_index i :: !mats
     | RspOff tc, RspOff sc when tc = sc ->
       if target.mat.(i) && not s.mat.(i) then
         mats := Reg.of_index i :: !mats
     | Unknown, Unknown -> ()
     | Unknown, (Known _ | RspOff _) ->
       (* target reads the real register *)
       if not s.mat.(i) then mats := Reg.of_index i :: !mats
     | _ -> ok := false)
  done;
  for i = 0 to 5 do
    (match target.flags.(i), s.flags.(i) with
     | FK tb, FK sb when tb = sb -> ()
     | FU, _ -> ()
     | _ -> ok := false)
  done;
  (* slots: every slot the target believes known must match *)
  List.iter
    (fun (off, tv) ->
      match tv with
      | Unknown -> ()
      | tv -> if slot_get s off <> tv then ok := false)
    target.slots;
  if !ok then Some !mats else None

(** Pointwise join (widening): differing components become unknown. *)
let join (a : t) (b : t) : t =
  let r = copy a in
  for i = 0 to 15 do
    (match a.regs.(i), b.regs.(i) with
     | x, y when x = y ->
       r.mat.(i) <- a.mat.(i) && b.mat.(i)
     | _ ->
       r.regs.(i) <- Unknown;
       r.mat.(i) <- true)
  done;
  for i = 0 to 5 do
    if a.flags.(i) <> b.flags.(i) then r.flags.(i) <- FU
  done;
  r.slots <-
    List.filter_map
      (fun (off, v) -> if slot_get b off = v then Some (off, v) else None)
      a.slots;
  r
