lib/stencil/stencil.ml: Array Cpu Image Int64 List Mem Obrew_minic Obrew_x86 Stdlib
