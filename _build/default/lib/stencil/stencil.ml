(** The paper's case study (Sec. V): a generic 2-d stencil with three
    representations —

    - {b direct}: the stencil hard-coded (the hand-specialized upper
      bound the other variants chase);
    - {b flat} (Fig. 7): [struct FS { int ps; struct FP p[]; }] with
      [FP { double f; int dx, dy; }];
    - {b sorted}: points grouped by coefficient, with the groups
      reached through pointers ([struct SS { int gs; struct SG *p[]; }])
      — these nested pointers are exactly what IR-level fixation cannot
      chase (Sec. IV) while DBrew's fixed memory ranges can.

    Element kernels compute one matrix cell; line kernels loop over one
    matrix row (Sec. V).  All share the signature
    [(stencil, m1, m2, index)] so rewritten variants are drop-in
    replacements. *)

open Obrew_x86
open Obrew_minic.Ast

(* ------------------------------------------------------------------ *)
(* Data structure layouts (x86-64 C ABI)                               *)
(* ------------------------------------------------------------------ *)

(* FP: f at 0 (f64), dx at 8 (i32), dy at 12 (i32); 16 bytes *)
(* FS: ps at 0 (i32), points from 8 *)
(* SP: dx at 0, dy at 4; 8 bytes *)
(* SG: f at 0 (f64), ps at 8 (i32), points from 16 *)
(* SS: gs at 0 (i32), group pointers from 8 (8 bytes each) *)

type workload = {
  img : Image.t;
  sz : int;                (* matrix side length *)
  m1 : int;                (* matrix addresses *)
  m2 : int;
  s_flat : int;            (* struct FS *)
  s_flat_len : int;
  s_sorted : int;          (* struct SS *)
  s_sorted_len : int;
}

(** The 4-point Jacobi stencil of the paper: N/S/E/W with factor 1/4. *)
let points4 = [ (-1, 0); (1, 0); (0, -1); (0, 1) ]
let factor4 = 0.25

let write_flat_pairs img (points : (float * (int * int)) list) : int * int =
  let n = List.length points in
  let len = 8 + (16 * n) in
  let a = Image.alloc_data ~align:16 img len in
  let mem = img.Image.cpu.Cpu.mem in
  Mem.write_u32 mem a n;
  List.iteri
    (fun i (f, (dx, dy)) ->
      let p = a + 8 + (16 * i) in
      Mem.write_f64 mem p f;
      Mem.write_u32 mem (p + 8) (dx land 0xFFFFFFFF);
      Mem.write_u32 mem (p + 12) (dy land 0xFFFFFFFF))
    points;
  (a, len)

let write_flat img (points : (int * int) list) (f : float) : int * int =
  write_flat_pairs img (List.map (fun p -> (f, p)) points)

let write_sorted img (groups : (float * (int * int) list) list) : int * int =
  let mem = img.Image.cpu.Cpu.mem in
  let root_len = 8 + (8 * List.length groups) in
  (* allocate the root and the group blobs contiguously so one
     dbrew_set_mem range covers everything *)
  let total =
    root_len
    + List.fold_left (fun acc (_, ps) -> acc + 16 + (8 * List.length ps)) 0
        groups
  in
  let a = Image.alloc_data ~align:16 img total in
  Mem.write_u32 mem a (List.length groups);
  let cursor = ref (a + root_len) in
  List.iteri
    (fun gi (f, pts) ->
      let g = !cursor in
      Mem.write_u64 mem (a + 8 + (8 * gi)) (Int64.of_int g);
      Mem.write_f64 mem g f;
      Mem.write_u32 mem (g + 8) (List.length pts);
      List.iteri
        (fun i (dx, dy) ->
          let q = g + 16 + (8 * i) in
          Mem.write_u32 mem q (dx land 0xFFFFFFFF);
          Mem.write_u32 mem (q + 4) (dy land 0xFFFFFFFF))
        pts;
      cursor := g + 16 + (8 * List.length pts))
    groups;
  (a, total)

(** An 8-point stencil with two coefficient groups (cross 0.2,
    diagonals 0.05) — exercises the sorted representation's outer
    group loop. *)
let groups8 =
  [ (0.2, [ (-1, 0); (1, 0); (0, -1); (0, 1) ]);
    (0.05, [ (-1, -1); (-1, 1); (1, -1); (1, 1) ]) ]

(** Allocate matrices and stencil structures.  The matrix boundary is
    held at a linear gradient; the interior starts at zero (a classic
    Jacobi heat-plate setup).  [groups] defaults to the paper's
    4-point stencil with a single 1/4 coefficient. *)
let setup ?(sz = 65)
    ?(groups = [ (factor4, points4) ]) (img : Image.t) : workload =
  let mem = img.Image.cpu.Cpu.mem in
  let m1 = Image.alloc_data ~align:16 img (8 * sz * sz) in
  let m2 = Image.alloc_data ~align:16 img (8 * sz * sz) in
  for r = 0 to sz - 1 do
    for c = 0 to sz - 1 do
      let v =
        if r = 0 then float_of_int c /. float_of_int (sz - 1)
        else if c = 0 then float_of_int r /. float_of_int (sz - 1)
        else if r = sz - 1 then
          1.0 -. (float_of_int c /. float_of_int (sz - 1))
        else if c = sz - 1 then
          1.0 -. (float_of_int r /. float_of_int (sz - 1))
        else 0.0
      in
      Mem.write_f64 mem (m1 + (8 * ((r * sz) + c))) v;
      Mem.write_f64 mem (m2 + (8 * ((r * sz) + c))) v
    done
  done;
  (* the flat representation stores every (point, factor) pair *)
  let flat_points =
    List.concat_map (fun (f, pts) -> List.map (fun p -> (f, p)) pts) groups
  in
  let s_flat, s_flat_len = write_flat_pairs img flat_points in
  let s_sorted, s_sorted_len = write_sorted img groups in
  { img; sz; m1; m2; s_flat; s_flat_len; s_sorted; s_sorted_len }

(* ------------------------------------------------------------------ *)
(* The mini-C kernels (Fig. 7)                                         *)
(* ------------------------------------------------------------------ *)

let kernel_sig = [ TPtr; TPtr; TPtr; TInt ] (* stencil, m1, m2, index *)
let line_sig = [ TPtr; TPtr; TPtr; TInt; TInt ] (* + rowbase, n *)

let byte p off = PtrAdd (p, i off, 1)
let elem m idx = PtrAdd (m, idx, 8)

(* the hard-coded stencil, factored form *)
let apply_direct ~sz : fn =
  let m1 = Param 1 and m2 = Param 2 and idx = Param 3 in
  { name = "apply_direct"; params = kernel_sig; ret = None;
    body =
      [ StoreF64
          ( elem m2 idx,
            Flt 0.25
            *. (LoadF64 (elem m1 (idx -! i 1))
                +. LoadF64 (elem m1 (idx +! i 1))
                +. LoadF64 (elem m1 (idx -! i sz))
                +. LoadF64 (elem m1 (idx +! i sz))) );
        Return None ] }

(* generic flat kernel: loop over stencil points *)
let apply_flat ~sz : fn =
  let s = Param 0 and m1 = Param 1 and m2 = Param 2 and idx = Param 3 in
  { name = "apply_flat"; params = kernel_sig; ret = None;
    body =
      [ Decl ("v", Flt 0.0);
        Decl ("ps", LoadI32 s);
        For
          ( "pi", i 0, v "pi" <! v "ps", v "pi" +! i 1,
            [ Decl ("p", PtrAdd (byte s 8, v "pi", 16));
              Decl ("f", LoadF64 (v "p"));
              Decl ("dx", LoadI32 (byte (v "p") 8));
              Decl ("dy", LoadI32 (byte (v "p") 12));
              Assign
                ( "v",
                  v "v"
                  +. (v "f"
                      *. LoadF64
                           (elem m1 (idx +! v "dx" +! (i sz *! v "dy")))) )
            ] );
        StoreF64 (elem m2 idx, v "v");
        Return None ] }

(* generic sorted kernel: groups reached through pointers *)
let apply_sorted ~sz : fn =
  let s = Param 0 and m1 = Param 1 and m2 = Param 2 and idx = Param 3 in
  { name = "apply_sorted"; params = kernel_sig; ret = None;
    body =
      [ Decl ("v", Flt 0.0);
        Decl ("gs", LoadI32 s);
        For
          ( "gi", i 0, v "gi" <! v "gs", v "gi" +! i 1,
            [ (* nested pointer: the group is loaded from the root *)
              Decl ("g", LoadI64 (PtrAdd (byte s 8, v "gi", 8)));
              Decl ("f", LoadF64 (v "g"));
              Decl ("ps", LoadI32 (byte (v "g") 8));
              Decl ("w", Flt 0.0);
              For
                ( "pi", i 0, v "pi" <! v "ps", v "pi" +! i 1,
                  [ Decl ("q", PtrAdd (byte (v "g") 16, v "pi", 8));
                    Decl ("dx", LoadI32 (v "q"));
                    Decl ("dy", LoadI32 (byte (v "q") 4));
                    Assign
                      ( "w",
                        v "w"
                        +. LoadF64
                             (elem m1 (idx +! v "dx" +! (i sz *! v "dy"))) )
                  ] );
              Assign ("v", v "v" +. (v "f" *. v "w")) ] );
        StoreF64 (elem m2 idx, v "v");
        Return None ] }

(* line kernels: loop over the interior of one row, calling the
   element computation (Sec. V: "wrap the kernel call into a loop over
   one line of the matrix") *)
let line_of (element : string) : fn =
  let s = Param 0 and m1 = Param 1 and m2 = Param 2 in
  let rowbase = Param 3 and n = Param 4 in
  { name = "line_" ^ element; params = line_sig; ret = None;
    body =
      [ For
          ( "j", i 1, v "j" <! (n -! i 1), v "j" +! i 1,
            [ Expr
                (Call
                   ( "apply_" ^ element,
                     [ s; m1; m2; rowbase +! v "j" ] )) ] );
        Return None ] }

(* Jacobi drivers: iterate over the interior cells (element mode) or
   rows (line mode) through an arbitrary kernel pointer, swapping the
   matrices between iterations.  The driver loop overhead is part of
   the measured time, exactly as in Sec. VI. *)
let jacobi_element ~sz : fn =
  let s = Param 0 and m1p = Param 1 and m2p = Param 2 in
  let iters = Param 3 and kern = Param 4 in
  { name = "jacobi_element"; params = [ TPtr; TPtr; TPtr; TInt; TPtr ];
    ret = None;
    body =
      [ Decl ("a", m1p);
        Decl ("b", m2p);
        For
          ( "it", i 0, v "it" <! iters, v "it" +! i 1,
            [ For
                ( "r", i 1, v "r" <! i (sz - 1), v "r" +! i 1,
                  [ Decl ("rb", v "r" *! i sz);
                    For
                      ( "c", i 1, v "c" <! i (sz - 1), v "c" +! i 1,
                        [ Expr
                            (CallPtr
                               ( kern, kernel_sig, None,
                                 [ s; v "a"; v "b"; v "rb" +! v "c" ] )) ] )
                  ] );
              Decl ("t", v "a");
              Assign ("a", v "b");
              Assign ("b", v "t") ] );
        Return None ] }

let jacobi_line ~sz : fn =
  let s = Param 0 and m1p = Param 1 and m2p = Param 2 in
  let iters = Param 3 and kern = Param 4 in
  { name = "jacobi_line"; params = [ TPtr; TPtr; TPtr; TInt; TPtr ];
    ret = None;
    body =
      [ Decl ("a", m1p);
        Decl ("b", m2p);
        For
          ( "it", i 0, v "it" <! iters, v "it" +! i 1,
            [ For
                ( "r", i 1, v "r" <! i (sz - 1), v "r" +! i 1,
                  [ Expr
                      (CallPtr
                         ( kern, line_sig, None,
                           [ s; v "a"; v "b"; v "r" *! i sz; i sz ] )) ] );
              Decl ("t", v "a");
              Assign ("a", v "b");
              Assign ("b", v "t") ] );
        Return None ] }

(** The whole benchmark program. *)
let program ~sz : prog =
  [ apply_direct ~sz; apply_flat ~sz; apply_sorted ~sz;
    line_of "direct"; line_of "flat"; line_of "sorted";
    jacobi_element ~sz; jacobi_line ~sz ]

(** Reference Jacobi in OCaml for an arbitrary stencil. *)
let reference_groups ~groups ~sz ~iters (m1 : float array)
    (m2 : float array) =
  let ( *.. ) = Stdlib.( *. ) and ( +.. ) = Stdlib.( +. ) in
  let a = ref (Array.copy m1) and b = ref (Array.copy m2) in
  for _ = 1 to iters do
    for r = 1 to sz - 2 do
      for c = 1 to sz - 2 do
        let idx = (r * sz) + c in
        !b.(idx) <-
          List.fold_left
            (fun acc (f, pts) ->
              acc
              +.. (f
                   *.. List.fold_left
                         (fun w (dx, dy) -> w +.. !a.(idx + dx + (sz * dy)))
                         0.0 pts))
            0.0 groups
      done
    done;
    let t = !a in
    a := !b;
    b := t
  done;
  (!a, !b)

(** Reference Jacobi in OCaml, for output validation. *)
let reference ~sz ~iters (m1 : float array) (m2 : float array) =
  (* the AST convenience operators shadow the float ones *)
  let ( *. ) = Stdlib.( *. ) and ( +. ) = Stdlib.( +. ) in
  let a = ref (Array.copy m1) and b = ref (Array.copy m2) in
  for _ = 1 to iters do
    for r = 1 to sz - 2 do
      for c = 1 to sz - 2 do
        let idx = (r * sz) + c in
        !b.(idx) <-
          factor4
          *. (!a.(idx - 1) +. !a.(idx + 1) +. !a.(idx - sz) +. !a.(idx + sz))
      done
    done;
    let t = !a in
    a := !b;
    b := t
  done;
  (!a, !b)

(** Read a matrix out of the image. *)
let read_matrix (w : workload) addr : float array =
  Array.init (w.sz * w.sz) (fun k ->
      Mem.read_f64 w.img.Image.cpu.Cpu.mem (addr + (8 * k)))
