(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sec. VI).

     Fig. 5  — per-instruction lifting examples (IR dumps)
     Fig. 6  — effect of the flag cache on cmp+cmov (IR dumps)
     Fig. 8  — DBrew output vs DBrew+LLVM output (disassembly)
     Fig. 9a — element-kernel run times (simulated cycles)
     Fig. 9b — line-kernel run times (simulated cycles)
     Fig. 10 — transformation/compile times (Bechamel wall-clock)
     Sec. VI-B note — forced vectorization and unaligned accesses
     + ablation studies for the lifter features and optimizer passes

   Run times are deterministic simulated cycles from the x86 emulator's
   cost model (see DESIGN.md); compile times are real wall-clock.
   `--sz N --iters N` scale the Jacobi workload; `--only SECTION`
   selects one section. *)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Obrew_lifter
open Obrew_core
open Bechamel
open Toolkit

module Tel = Obrew_telemetry.Telemetry

let sz = ref 49
let iters = ref 6
let only = ref []
let write_json_files = ref false
let trace_file = ref None

(* every artifact the harness writes (BENCH_*.json, trace files) lands
   under this one directory, so a bench run never litters the CWD *)
let out_dir = ref "_bench"

let ensure_out_dir () =
  try Unix.mkdir !out_dir 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* relative artifact paths are taken relative to --out *)
let in_out f =
  if Filename.is_relative f then Filename.concat !out_dir f else f

let () =
  let rec parse = function
    | "--sz" :: n :: tl -> sz := int_of_string n; parse tl
    | "--iters" :: n :: tl -> iters := int_of_string n; parse tl
    | "--only" :: s :: tl -> only := s :: !only; parse tl
    | "--quick" :: tl -> sz := 25; iters := 3; parse tl
    | "--json" :: tl -> write_json_files := true; parse tl
    | "--out" :: d :: tl -> out_dir := d; parse tl
    | "--trace" :: f :: tl -> trace_file := Some f; parse tl
    | [] -> ()
    | a :: _ -> Printf.eprintf "unknown argument %s\n" a; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* refuse degenerate workloads up front: a zero-iteration or
     sub-stencil run produces meaningless "results" that would silently
     poison the cross-PR perf trajectory *)
  if !sz < 3 then begin
    Printf.eprintf "bench: --sz must be >= 3 (got %d)\n" !sz;
    exit 2
  end;
  if !iters < 1 then begin
    Printf.eprintf "bench: --iters must be >= 1 (got %d)\n" !iters;
    exit 2
  end;
  if !trace_file <> None then Tel.enable ()

let enabled name = !only = [] || List.mem name !only

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* write machine-readable per-section results as BENCH_<section>.json
   under the --out directory when --json is given, so the perf
   trajectory is comparable across PRs without scraping the human
   tables *)
let write_json section (fields : string list) =
  if not !write_json_files then ()
  else begin
    let path =
      Filename.concat !out_dir (Printf.sprintf "BENCH_%s.json" section)
    in
    try
      ensure_out_dir ();
      let oc = open_out path in
      output_string oc ("{\n  " ^ String.concat ",\n  " fields ^ "\n}\n");
      close_out oc;
      Printf.printf "[json written to %s]\n" path
    with
    | Sys_error m -> Printf.eprintf "warning: cannot write %s: %s\n" path m
    | Unix.Unix_error (e, _, arg) ->
      Printf.eprintf "warning: cannot write %s: %s: %s\n" path
        (Unix.error_message e) arg
  end

(* bump when the shape of the BENCH_*.json files changes; consumers
   (CI's validator, trajectory tooling) key on this *)
let bench_schema_version = 2

let jstr k v = Printf.sprintf "%S: %S" k v
let jint k v = Printf.sprintf "%S: %d" k v
let jfloat k v = Printf.sprintf "%S: %.6f" k v

let jobj k fields = Printf.sprintf "%S: {%s}" k (String.concat ", " fields)

let sb_stats_fields (s : Cpu.cache_stats) =
  [ jint "hits" s.Cpu.block_hits; jint "misses" s.Cpu.block_misses;
    jint "chained" s.Cpu.block_chained; jint "flushes" s.Cpu.block_flushes;
    jint "live" s.Cpu.blocks_live;
    jint "traces" s.Cpu.traces_built;
    jint "trace_side_exits" s.Cpu.trace_side_exits;
    jint "ic_hits" s.Cpu.ic_hits;
    jint "ic_misses" s.Cpu.ic_misses;
    jobj "fused_pairs"
      (List.map (fun (pat, n) -> jint pat n) s.Cpu.fused_pairs);
    jint "flag_records" s.Cpu.flag_records;
    jint "flag_materialized" s.Cpu.flag_materialized;
    jint "flag_dead_writes" s.Cpu.flag_dead_writes ]

(* ------------------------------------------------------------------ *)
(* Fig. 5: per-instruction lifting                                     *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "Fig. 5: transforming individual x86-64 instructions to IR";
  let show name items sg =
    let img = Image.create () in
    let fn = Image.install_code img items in
    let f =
      Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn
        ~name:"lifted" sg
    in
    (* the raw translation carries a large number of phi nodes and flag
       computations that are "mostly unused ... removed by the
       optimizer" (Sec. III-C); a DCE sweep recovers the Fig. 5 shape *)
    ignore (Dce.run f);
    (* print only the body of the first lifted block (skip the entry
       scaffolding), mirroring the excerpts of Fig. 5 *)
    Printf.printf "\n; %s\n" name;
    (match f.Ins.blocks with
     | _entry :: b :: _ -> print_string (Pp_ir.block b)
     | _ -> ());
    ()
  in
  let open Insn in
  show "sub rax, 1"
    [ I (Alu (Sub, W64, OReg Reg.RAX, OImm 1L)); I Ret ]
    { Ins.args = [ Ins.I64 ]; ret = Some Ins.I64 };
  show "mov eax, [rdi - 0xc]"
    [ I (Mov (W32, OReg Reg.RAX, OMem (mem_base ~disp:(-12) Reg.RDI))); I Ret ]
    { Ins.args = [ Ins.Ptr 0 ]; ret = Some Ins.I64 };
  show "addsd xmm0, xmm1"
    [ I (SseArith (FAdd, Sd, 0, Xr 1)); I Ret ]
    { Ins.args = [ Ins.F64; Ins.F64 ]; ret = Some Ins.F64 }

(* ------------------------------------------------------------------ *)
(* Fig. 6: the flag cache                                              *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Fig. 6: flag cache and comparison reconstruction";
  let max_code =
    let open Insn in
    [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
      I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
      I (Cmov (L, W64, Reg.RAX, OReg Reg.RSI));
      I Ret ]
  in
  let lift_opt ~flag_cache =
    let img = Image.create () in
    let fn = Image.install_code img max_code in
    let cfg = { Lift.default_config with flag_cache } in
    let f =
      Lift.lift ~config:cfg ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
        ~entry:fn ~name:"max"
        { Ins.args = [ Ins.I64; Ins.I64 ]; ret = Some Ins.I64 }
    in
    Pipeline.run { Ins.funcs = [ f ]; globals = [] };
    f
  in
  Printf.printf "\n(a) original code:\n";
  List.iter (fun it -> print_endline (Pp.item it)) max_code;
  let f_no = lift_opt ~flag_cache:false in
  Printf.printf "\n(b) optimized IR, no flag cache (%d instructions):\n%s"
    (Pp_ir.size f_no - 1) (Pp_ir.func f_no);
  let f_yes = lift_opt ~flag_cache:true in
  Printf.printf "\n(c) optimized IR, flag cache (%d instructions):\n%s"
    (Pp_ir.size f_yes - 1) (Pp_ir.func f_yes)

(* ------------------------------------------------------------------ *)
(* Fig. 8: DBrew output with and without LLVM post-processing          *)
(* ------------------------------------------------------------------ *)

let fig8 env =
  header "Fig. 8: flat element kernel, DBrew vs DBrew+LLVM";
  let dump label addr =
    Printf.printf "\n; %s\n%s\n" label
      (Pp.listing ~addrs:false (Image.disassemble_fn env.Modes.img addr))
  in
  (try
     let a, _ = Modes.transform env Modes.Flat Modes.Element Modes.DBrew in
     dump "specialized by DBrew" a
   with Obrew_fault.Err.Error e ->
     Printf.printf "DBrew failed: %s\n" (Obrew_fault.Err.to_string e));
  (try
     let a, _ = Modes.transform env Modes.Flat Modes.Element Modes.DBrewLlvm in
     dump "DBrew + LLVM post-processing" a
   with Obrew_fault.Err.Error e ->
     Printf.printf "DBrew+LLVM failed: %s\n" (Obrew_fault.Err.to_string e))

(* ------------------------------------------------------------------ *)
(* Fig. 9: run times                                                   *)
(* ------------------------------------------------------------------ *)

let transforms =
  [ Modes.Native; Modes.Llvm; Modes.LlvmFix; Modes.DBrew; Modes.DBrewLlvm ]

let kinds = [ Modes.Direct, "Direct"; Modes.Flat, "Struct";
              Modes.Sorted, "SortedStruct" ]

let fig9 env (style : Modes.style) =
  let label = match style with Modes.Element -> "9a" | Modes.Line -> "9b" in
  header
    (Printf.sprintf
       "Fig. %s: %s-kernel run times (simulated Mcycles; %dx%d matrix, %d iterations)"
       label (Modes.style_name style) !sz !sz !iters);
  Printf.printf "%-14s" "";
  List.iter
    (fun t -> Printf.printf "%12s" (Modes.transform_name t))
    transforms;
  print_newline ();
  let cpu = env.Modes.img.Image.cpu in
  Cpu.reset_cache_stats cpu;
  let rows = ref [] in
  let total_insns = ref 0 and total_wall = ref 0.0 in
  List.iter
    (fun (kind, kname) ->
      Printf.printf "%-14s" kname;
      List.iter
        (fun t ->
          try
            let k, _ = Modes.transform env kind style t in
            let t0 = Unix.gettimeofday () in
            let cycles, insns =
              Modes.run env kind style ~kernel:k ~iters:!iters
            in
            let wall = Unix.gettimeofday () -. t0 in
            if cycles <= 0 || insns <= 0 then begin
              Printf.eprintf
                "bench: garbage measurement for %s/%s (%d cycles, %d \
                 insns) — refusing to record it\n"
                kname (Modes.transform_name t) cycles insns;
              exit 1
            end;
            total_insns := !total_insns + insns;
            total_wall := !total_wall +. wall;
            rows :=
              jobj
                (Printf.sprintf "%s/%s" kname (Modes.transform_name t))
                [ jstr "kind" kname;
                  jstr "mode" (Modes.transform_name t);
                  jint "cycles" cycles; jint "insns" insns;
                  jint "wall_ns" (int_of_float (wall *. 1e9));
                  jfloat "wall_s" wall ]
              :: !rows;
            Printf.printf "%12.2f" (float_of_int cycles /. 1e6)
          with Obrew_fault.Err.Error _ -> Printf.printf "%12s" "n/a")
        transforms;
      print_newline ())
    kinds;
  let stats = Cpu.cache_stats cpu in
  let lookups = stats.Cpu.block_hits + stats.Cpu.block_misses in
  let hit_rate =
    if lookups = 0 then 0.0
    else float_of_int stats.Cpu.block_hits /. float_of_int lookups
  in
  let mips =
    if !total_wall > 0.0 then float_of_int !total_insns /. !total_wall /. 1e6
    else 0.0
  in
  let mh, mm = Modes.memo_stats env in
  let dh, dm = Obrew_dbrew.Api.memo_stats () in
  Printf.printf
    "emulated: %.1f MIPS  |  superblocks: %d live, %.1f%% hit rate, %d chained transitions\n"
    mips stats.Cpu.blocks_live (100.0 *. hit_rate) stats.Cpu.block_chained;
  Printf.printf
    "memo caches: transform %d hits / %d misses, dbrew %d hits / %d misses\n"
    mh mm dh dm;
  (* --- tail latency ----------------------------------------------- *)
  (* Measured last: every comparability-gated counter above is already
     captured, so these extra serves cannot perturb the cycle, memo or
     superblock numbers CI diffs against the baseline. *)
  let n_serves = 32 and stage_transforms = 8 in
  let was_enabled = !Tel.enabled in
  if not was_enabled then Tel.enable ();
  let mark = Tel.events_recorded () in
  (* per-stage: cold (unmemoized) transforms; the pipeline's spans are
     aggregated from the telemetry sink below *)
  (try
     for _ = 1 to stage_transforms do
       ignore
         (Modes.transform ~use_memo:false env Modes.Flat style
            Modes.DBrewLlvm)
     done
   with Obrew_fault.Err.Error _ -> ());
  let stage_tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Tel.iter_events_from mark (fun ~name ~kind ~ts:_ ~dur ~args:_ ->
      if kind = 0 then
        match Hashtbl.find_opt stage_tbl name with
        | Some l -> l := dur :: !l
        | None -> Hashtbl.add stage_tbl name (ref [ dur ]));
  (* end-to-end: one serve = memoized transform + single-iteration run
     — the steady-state request a client of the rewriter waits for *)
  let sh = Tel.histogram ("bench.serve.fig" ^ label) in
  let t_serves = Unix.gettimeofday () in
  (try
     for _ = 1 to n_serves do
       let t0 = Unix.gettimeofday () in
       let k, _ = Modes.transform env Modes.Flat style Modes.DBrewLlvm in
       ignore (Modes.run env Modes.Flat style ~kernel:k ~iters:1);
       Tel.observe sh
         (max 1 (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)))
     done
   with Obrew_fault.Err.Error _ -> ());
  let serve_wall = Unix.gettimeofday () -. t_serves in
  if not was_enabled then Tel.disable ();
  let p50 = Tel.percentile sh 50.0 and p90 = Tel.percentile sh 90.0 in
  let p99 = Tel.percentile sh 99.0 and p999 = Tel.percentile sh 99.9 in
  let throughput =
    if serve_wall > 0.0 then float_of_int sh.Tel.hcount /. serve_wall
    else 0.0
  in
  Printf.printf
    "serve latency (%d serve(s), flat/%s, DBrew+LLVM): p50 %d us, p90 %d \
     us, p99 %d us, p99.9 %d us  |  %.0f req/s\n"
    sh.Tel.hcount (Modes.style_name style) p50 p90 p99 p999 throughput;
  let exact_pct sorted p =
    let n = Array.length sorted in
    if n = 0 then 0
    else
      sorted.(max 0
                (min (n - 1)
                   (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))
  in
  let stage_rows =
    Hashtbl.fold (fun name l acc -> (name, !l) :: acc) stage_tbl []
    |> List.sort compare
    |> List.map (fun (name, durs) ->
           let a = Array.of_list durs in
           Array.sort compare a;
           ( name,
             Array.length a,
             exact_pct a 50.0, exact_pct a 90.0, exact_pct a 99.0 ))
  in
  Printf.printf "stage latency over %d cold transform(s) (ns, p50/p90/p99):\n"
    stage_transforms;
  List.iter
    (fun (name, c, s50, s90, s99) ->
      Printf.printf "  %-20s %4d span(s) %10d %10d %10d\n" name c s50 s90 s99)
    stage_rows;
  if !rows = [] then begin
    Printf.eprintf "bench: fig%s produced no results — refusing to write \
                    an empty report\n" label;
    exit 1
  end;
  write_json ("fig" ^ label)
    [ jint "schema_version" bench_schema_version;
      jstr "section" ("fig" ^ label);
      jint "sz" !sz; jint "iters" !iters;
      jobj "rows" (List.rev !rows);
      jfloat "emulated_mips" mips;
      jfloat "superblock_hit_rate" hit_rate;
      jobj "superblocks" (sb_stats_fields stats);
      jobj "transform_memo" [ jint "hits" mh; jint "misses" mm ];
      jobj "dbrew_memo" [ jint "hits" dh; jint "misses" dm ];
      jobj "serve_latency"
        [ jint "serves" sh.Tel.hcount;
          jint "p50_us" p50; jint "p90_us" p90; jint "p99_us" p99;
          jint "p999_us" p999;
          jfloat "throughput_rps" throughput ];
      jobj "stage_latency"
        (List.map
           (fun (name, c, s50, s90, s99) ->
             jobj name
               [ jint "spans" c; jint "p50_ns" s50; jint "p90_ns" s90;
                 jint "p99_ns" s99 ])
           stage_rows) ]

(* ------------------------------------------------------------------ *)
(* Fig. 10: transformation times (Bechamel, one Test per mode)         *)
(* ------------------------------------------------------------------ *)

let fig10 env =
  header "Fig. 10: transformation times of the line kernel (wall clock)";
  let mk kind kname t =
    Test.make
      ~name:(Printf.sprintf "%s/%s" kname (Modes.transform_name t))
      (* use_memo:false — Fig. 10 measures the real pipeline cost, so
         repeated runs must not be served from the memo cache *)
      (Staged.stage (fun () ->
           try ignore (Modes.transform ~use_memo:false env kind Modes.Line t)
           with Obrew_fault.Err.Error _ -> ()))
  in
  let tests =
    Test.make_grouped ~name:"fig10" ~fmt:"%s %s"
      (List.concat_map
         (fun (kind, kname) ->
           List.map (mk kind kname)
             [ Modes.Llvm; Modes.LlvmFix; Modes.DBrew; Modes.DBrewLlvm ])
         kinds)
  in
  let cfg =
    Benchmark.cfg ~limit:100 ~stabilize:false ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        Printf.printf "%-28s %10.3f ms/compile\n" name (est /. 1e6)
      | _ -> Printf.printf "%-28s %10s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Sec. VI-B: forced vectorization and unaligned accesses              *)
(* ------------------------------------------------------------------ *)

let vector env =
  header "Sec. VI-B: forced vectorization of the specialized line kernel";
  (* GCC baseline: the natively vectorized direct line kernel *)
  let nat = Modes.native_addr env Modes.Direct Modes.Line in
  let c_nat, _ = Modes.run env Modes.Direct Modes.Line ~kernel:nat ~iters:!iters in
  (* JIT: LLVM-fix of the flat kernel WITHOUT forced vectorization *)
  let scalar, _ = Modes.transform env Modes.Flat Modes.Line Modes.LlvmFix in
  let c_scalar, _ =
    Modes.run env Modes.Flat Modes.Line ~kernel:scalar ~iters:!iters
  in
  (* JIT: the same with -force-vector-width=2 *)
  let forced, _ =
    Modes.transform env
      ~opt:{ Modes.o3_opts with force_vector_width = Some 2 }
      Modes.Flat Modes.Line Modes.LlvmFix
  in
  let c_forced, _ =
    Modes.run env Modes.Flat Modes.Line ~kernel:forced ~iters:!iters
  in
  Printf.printf "natively vectorized direct line kernel : %10.2f Mcycles\n"
    (float_of_int c_nat /. 1e6);
  Printf.printf "LLVM-fix line kernel (scalar, default)  : %10.2f Mcycles\n"
    (float_of_int c_scalar /. 1e6);
  Printf.printf "LLVM-fix with -force-vector-width=2     : %10.2f Mcycles\n"
    (float_of_int c_forced /. 1e6);
  Printf.printf
    "forced-vectorized vs native-vectorized  : %+.0f%% (paper: +23%%, unaligned accesses)\n"
    (100.0 *. (float_of_int c_forced /. float_of_int c_nat -. 1.0))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_lifter env =
  header "Ablation: lifter features (flat element kernel, LLVM mode)";
  let run cfg label =
    try
      let k, dt = Modes.transform ~use_memo:false ~lift_config:cfg env
          Modes.Flat Modes.Element Modes.Llvm in
      let cycles, _ = Modes.run env Modes.Flat Modes.Element ~kernel:k
          ~iters:!iters in
      Printf.printf "%-26s %10.2f Mcycles   compile %6.2f ms\n" label
        (float_of_int cycles /. 1e6) (dt *. 1e3)
    with Obrew_fault.Err.Error e ->
      Printf.printf "%-26s failed: %s\n" label (Obrew_fault.Err.to_string e)
  in
  let d = Lift.default_config in
  run d "all features";
  run { d with flag_cache = false } "no flag cache";
  run { d with facet_cache = false } "no facet cache";
  run { d with use_gep = false } "inttoptr addressing";
  run { d with flag_cache = false; facet_cache = false; use_gep = false }
    "none"

let ablation_passes env =
  header "Ablation: which optimizations matter (flat element, LLVM-fix)";
  let base = Modes.o3_opts in
  let variants =
    [ ("full -O3", base);
      ("-O0 (no optimization)", { base with level = 0 });
      ("no fast-math", { base with fast_math = false });
      ("no inlining", { base with inline_threshold = 0 }) ]
  in
  List.iter
    (fun (label, opt) ->
      try
        let k, _ = Modes.transform ~use_memo:false ~opt env Modes.Flat
            Modes.Element Modes.LlvmFix in
        let cycles, _ = Modes.run env Modes.Flat Modes.Element ~kernel:k
            ~iters:!iters in
        Printf.printf "%-26s %10.2f Mcycles\n" label
          (float_of_int cycles /. 1e6)
      with Obrew_fault.Err.Error e ->
        Printf.printf "%-26s failed: %s\n" label
          (Obrew_fault.Err.to_string e))
    variants;
  (* per-pass activity of the full pipeline (bypass the memo so the
     pipeline actually runs and updates the pass counters) *)
  ignore (Modes.transform ~use_memo:false env Modes.Flat Modes.Element
            Modes.LlvmFix);
  Printf.printf "\npass activity (times a pass changed the IR):\n";
  List.iter
    (fun (name, n) -> Printf.printf "  %-14s %4d\n" name n)
    (List.sort compare Pipeline.stats.Pipeline.pass_changes)

(* ------------------------------------------------------------------ *)
(* Tiered adaptive compilation: time-to-peak and total cost            *)
(* ------------------------------------------------------------------ *)

module Tier = Obrew_tier.Tier
module Sen = Obrew_sentinel.Sentinel

(* fixed workload, independent of --sz/--iters/--quick: the simulated
   cycles of every strategy are fully deterministic, so CI gates them
   bit-for-bit against the committed baseline wherever the bench runs *)
let tier_sz = 17
let tier_slices = 32
let tier_threshold = 50_000

let tier_section () =
  header
    (Printf.sprintf
       "Tiered adaptive compilation (%dx%d matrix, %d slices, threshold %d)"
       tier_sz tier_sz tier_slices tier_threshold);
  let hot = (Modes.Flat, Modes.Element) in
  let cold = [ (Modes.Direct, Modes.Element); (Modes.Sorted, Modes.Element) ] in
  let schedule = Tier.partially_hot ~slices:tier_slices ~hot ~cold in
  let cfg =
    { Tier.default_config with Tier.hot_threshold = tier_threshold }
  in
  let run strategy =
    (* fresh env and sentinel per strategy: each run pays its own
       compiles and sees no kernels from the previous one *)
    let env = Modes.build ~sz:tier_sz () in
    Sen.reset ();
    Obrew_fault.Quarantine.clear ();
    Tier.run ~cfg env ~schedule ~strategy
  in
  let tiered = run Tier.Tiered in
  let always = run Tier.AlwaysTop in
  let never = run Tier.NeverTier in
  let results =
    [ (Tier.strategy_name Tier.Tiered, tiered);
      (Tier.strategy_name Tier.AlwaysTop, always);
      (Tier.strategy_name Tier.NeverTier, never) ]
  in
  Printf.printf "%-8s %12s %12s %14s %12s %8s %8s\n" "" "Mcycles"
    "compile ms" "peak after" "peak cyc" "tierups" "patches";
  List.iter
    (fun (name, r) ->
      Printf.printf "%-8s %12.3f %12.3f %11d sl. %12.3f %8d %8d\n" name
        (float_of_int r.Tier.r_total_cycles /. 1e6)
        (r.Tier.r_compile_s *. 1e3)
        r.Tier.r_slices_to_peak
        (float_of_int r.Tier.r_cycles_to_peak /. 1e6)
        r.Tier.r_tierups r.Tier.r_patches)
    results;
  let hot_sites r =
    List.length
      (List.filter (fun s -> Tier.level_name s.Tier.s_level = "hot")
         r.Tier.r_sites)
  in
  (* exactness first: every strategy must compute the same bits *)
  if always.Tier.r_result <> never.Tier.r_result
     || tiered.Tier.r_result <> never.Tier.r_result
  then begin
    Printf.eprintf
      "bench: tier strategies disagree on the result matrix — tiering \
       changed the computation\n";
    exit 1
  end;
  (* the figure's deterministic claims, asserted at generation time:
     tiering beats never-tiering on total simulated cycles, and beats
     always-top on compile investment (only the dominant kernel is
     compiled to the top tier) *)
  if tiered.Tier.r_total_cycles >= never.Tier.r_total_cycles then begin
    Printf.eprintf
      "bench: tiered run (%d cycles) not cheaper than never-tier (%d)\n"
      tiered.Tier.r_total_cycles never.Tier.r_total_cycles;
    exit 1
  end;
  if not tiered.Tier.r_reached_peak then begin
    Printf.eprintf "bench: tiered run never reached the top tier\n";
    exit 1
  end;
  if hot_sites tiered >= hot_sites always then begin
    Printf.eprintf
      "bench: tiered run compiled %d site(s) to the top tier, always-top \
       %d — no compile saving to report\n"
      (hot_sites tiered) (hot_sites always);
    exit 1
  end;
  Printf.printf
    "tiered vs never-tier: %.1f%% fewer simulated cycles; vs always-top: \
     %d of %d sites compiled to the top tier (%.3f ms vs %.3f ms \
     compiling)\n"
    (100.0
     *. (1.0
         -. float_of_int tiered.Tier.r_total_cycles
            /. float_of_int never.Tier.r_total_cycles))
    (hot_sites tiered) (hot_sites always)
    (tiered.Tier.r_compile_s *. 1e3)
    (always.Tier.r_compile_s *. 1e3);
  let site_rows r =
    List.map
      (fun s ->
        jobj (Tier.site_key s)
          [ jstr "level" (Tier.level_name s.Tier.s_level);
            jint "slices" s.Tier.s_slices;
            jint "compiles" s.Tier.s_compiles;
            jint "patches" s.Tier.s_patches ])
      r.Tier.r_sites
  in
  let strategy_fields (name, r) =
    jobj name
      [ jint "total_cycles" r.Tier.r_total_cycles;
        jint "total_insns" r.Tier.r_total_insns;
        jfloat "compile_s" r.Tier.r_compile_s;
        jfloat "wall_s" r.Tier.r_wall_s;
        jint "cycles_to_peak" r.Tier.r_cycles_to_peak;
        jfloat "time_to_peak_s" r.Tier.r_time_to_peak_s;
        jint "slices_to_peak" r.Tier.r_slices_to_peak;
        jint "reached_peak" (if r.Tier.r_reached_peak then 1 else 0);
        jint "hot_sites" (hot_sites r);
        jint "patches" r.Tier.r_patches;
        jint "tierups" r.Tier.r_tierups;
        jint "demotions" r.Tier.r_demotions;
        jint "compiles" r.Tier.r_compiles;
        jobj "sites" (site_rows r) ]
  in
  write_json "tier"
    [ jint "schema_version" bench_schema_version;
      jstr "section" "tier";
      jint "sz" tier_sz; jint "slices" tier_slices;
      jint "hot_threshold" tier_threshold;
      jobj "strategies" (List.map strategy_fields results) ]

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "OBrew benchmark harness — matrix %dx%d, %d Jacobi iterations\n"
    !sz !sz !iters;
  let env = Modes.build ~sz:!sz () in
  if enabled "fig5" then fig5 ();
  if enabled "fig6" then fig6 ();
  if enabled "fig8" then fig8 env;
  if enabled "fig9a" then fig9 env Modes.Element;
  if enabled "fig9b" then fig9 env Modes.Line;
  if enabled "fig10" then fig10 env;
  if enabled "vector" then vector env;
  if enabled "ablation_lifter" then ablation_lifter env;
  if enabled "ablation_passes" then ablation_passes env;
  if enabled "tier" then tier_section ();
  (match !trace_file with
   | None -> ()
   | Some f ->
     let f = in_out f in
     ensure_out_dir ();
     Tel.write_file f (Tel.export_chrome_trace ());
     Printf.printf "[trace: %d events written to %s (%d dropped)]\n"
       (Tel.events_recorded ()) f (Tel.dropped ()));
  Printf.printf "\ndone.\n"
