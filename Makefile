# Convenience targets; CI runs `make ci`.

.PHONY: all build test bench bench-quick bench-mips bench-tier report blackbox-smoke trace profile fuzz fuzz-smoke examples ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# Writes BENCH_fig9a.json / BENCH_fig9b.json (and friends) under
# _bench/ — the machine-readable perf trajectory.  Compare two runs
# with `validate_bench compare`.
bench:
	dune exec bench/main.exe -- --json

bench-quick:
	dune exec bench/main.exe -- --quick --json

# Emulator-throughput gate: quick fig9a run, then fail if aggregate
# emulated MIPS dropped more than 25% against the committed baseline
# (wall-time rows get a loose band; MIPS is the headline metric).
bench-mips:
	dune exec bench/main.exe -- --quick --only fig9a --json
	dune exec tools/validate_bench.exe -- compare \
	  bench/baselines/BENCH_fig9a.json _bench/BENCH_fig9a.json \
	  --tol 300 --tol-mips 25

# Tiered-compilation figure (fixed workload, deterministic simulated
# cycles), gated bit-for-bit against the committed baseline.
bench-tier:
	dune exec bench/main.exe -- --only tier --json
	dune exec tools/validate_bench.exe -- --tier _bench/BENCH_tier.json
	dune exec tools/validate_bench.exe -- compare-tier \
	  bench/baselines/BENCH_tier.json _bench/BENCH_tier.json

# Consolidated observability status view under a deterministic
# saboteur fault: engine counters, sentinel health, quarantine
# registry and the flight-recorder tail on one page (DESIGN.md §12).
report:
	dune exec bin/obrew_cli.exe -- report --sz 9 --requests 6 \
	  --sentinel 2/2 --fault 'sabotage.rewrite.item:0:1' --events 16

# Crash-forensics drill: a sabotaged rewrite must leave a
# schema-valid black-box report whose flight tail carries the causal
# chain inject -> divergence -> quarantine -> demote, in order.
blackbox-smoke:
	dune exec bin/obrew_cli.exe -- stencil --sz 9 --iters 2 \
	  --mode dbrew-llvm --sentinel 2/2 --requests 8 \
	  --fault 'sabotage.rewrite.item:0:1' --blackbox
	dune exec tools/validate_bench.exe -- \
	  --blackbox-require-chain \
	  fault.sabotaged,sentinel.divergence,sentinel.quarantine,sentinel.demote \
	  --blackbox _bench/blackbox.json

# Chrome-trace of the full pipeline on the Jacobi case study: load
# trace.json at chrome://tracing or ui.perfetto.dev.
trace:
	dune exec bin/obrew_cli.exe -- stencil --trace trace.json --metrics

# Cycle-attribution profile + optimizer remarks of the Jacobi case
# study (provenance layer): human table on stdout, JSON artifacts in
# profile.json / remarks.json.
profile:
	dune exec bin/obrew_cli.exe -- stencil --profile \
	  --profile-out profile.json --remarks remarks.json

# Differential translation-validation campaign: 500 randomized cases
# through every semantic tier (single-step CPU, superblock engine,
# lifted IR, optimized IR, JIT code); divergences are shrunk and
# persisted under _bench/oracle/*.repro.
fuzz:
	dune exec bin/obrew_cli.exe -- fuzz --seeds 500 --tiers all \
	  --out _bench/oracle --stats
	dune exec bin/obrew_cli.exe -- fuzz --seeds 500 --tiers all \
	  --profile indirect --out _bench/oracle --stats

# Fixed-seed fault-injection smoke: ~500 random injection plans against
# the fail-safe pipeline (see test/test_fault.ml).
fuzz-smoke:
	QCHECK_SEED=42 dune exec test/test_fault.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/stencil_demo.exe
	dune exec examples/lifter_explorer.exe
	dune exec examples/specialize_hotloop.exe

ci:
	dune build @check
	dune runtest
	dune exec bench/main.exe -- --quick --only fig9a

clean:
	dune clean
