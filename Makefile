# Convenience targets; CI runs `make ci`.

.PHONY: all build test bench bench-quick ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

ci:
	dune build @check
	dune runtest
	dune exec bench/main.exe -- --quick --only fig9a

clean:
	dune clean
