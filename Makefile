# Convenience targets; CI runs `make ci`.

.PHONY: all build test bench bench-quick fuzz-smoke examples ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Fixed-seed fault-injection smoke: ~500 random injection plans against
# the fail-safe pipeline (see test/test_fault.ml).
fuzz-smoke:
	QCHECK_SEED=42 dune exec test/test_fault.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/stencil_demo.exe
	dune exec examples/lifter_explorer.exe
	dune exec examples/specialize_hotloop.exe

ci:
	dune build @check
	dune runtest
	dune exec bench/main.exe -- --quick --only fig9a

clean:
	dune clean
