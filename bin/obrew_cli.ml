(* obrew: command-line driver for exploring the system.

   Subcommands:
     stencil   run the paper's Jacobi case study in a chosen mode
     fig6      show the flag-cache effect on a cmp+cmov kernel
     modes     run all modes and print the comparison table
     passes    show optimizer pass activity on the fixated kernel
*)

open Cmdliner
open Obrew_core

let sz_arg =
  Arg.(value & opt int 49 & info [ "sz" ] ~docv:"N"
         ~doc:"Matrix side length.")

let iters_arg =
  Arg.(value & opt int 6 & info [ "iters" ] ~docv:"N"
         ~doc:"Jacobi iterations.")

let kind_arg =
  let cv =
    Arg.enum [ ("direct", Modes.Direct); ("flat", Modes.Flat);
               ("sorted", Modes.Sorted) ]
  in
  Arg.(value & opt cv Modes.Flat & info [ "kind" ] ~docv:"KIND"
         ~doc:"Stencil representation: direct, flat or sorted.")

let style_arg =
  let cv = Arg.enum [ ("element", Modes.Element); ("line", Modes.Line) ] in
  Arg.(value & opt cv Modes.Element & info [ "style" ] ~docv:"STYLE"
         ~doc:"Kernel granularity: element or line.")

let transform_arg =
  let cv =
    Arg.enum
      [ ("native", Modes.Native); ("llvm", Modes.Llvm);
        ("llvm-fix", Modes.LlvmFix); ("dbrew", Modes.DBrew);
        ("dbrew-llvm", Modes.DBrewLlvm) ]
  in
  Arg.(value & opt cv Modes.DBrewLlvm & info [ "mode" ] ~docv:"MODE"
         ~doc:"Transformation: native, llvm, llvm-fix, dbrew, dbrew-llvm.")

let dump_arg =
  Arg.(value & flag & info [ "dump" ] ~doc:"Disassemble the kernel used.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print execution-engine, memo-cache and robustness counters.")

let stats_json_arg =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ] ~docv:"FILE"
         ~doc:"Write the execution-engine counters (superblocks, traces, \
               mega-op fusion, lazy flags) as JSON to FILE; '-' for \
               stdout.")

let fallback_arg =
  Arg.(value & flag & info [ "fallback" ]
         ~doc:"On failure degrade gracefully (DBrew+LLVM, DBrew, LLVM, \
               Native) instead of exiting.")

let max_insns_arg =
  Arg.(value & opt (some int) None & info [ "max-insns" ] ~docv:"N"
         ~doc:"Emulator watchdog: abort the run after N executed \
               instructions.")

let fault_arg =
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"PLAN"
         ~doc:"Install a fault-injection plan, e.g. 'opt.gvn' or \
               'rewrite.trace:0:1,backend.isel'. Syntax: \
               point[:skip[:fires]] separated by commas.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record pipeline telemetry and write a chrome://tracing \
               JSON trace to FILE (load it at chrome://tracing or \
               ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Record pipeline telemetry and print aggregated metrics \
               JSON to stdout (or write to FILE if given).")

let profile_arg =
  Arg.(value & opt ~vopt:(Some 20) (some int) None
       & info [ "profile" ] ~docv:"N"
         ~doc:"Attribute simulated cycles to guest addresses and print \
               the N hottest ones (default 20) with their cycle shares.")

let profile_out_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
         ~doc:"Write the cycle profile as JSON to FILE.")

let remarks_arg =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "remarks" ] ~docv:"FILE"
         ~doc:"Record optimizer remarks (what each pass deleted, merged, \
               hoisted, unrolled or specialized, with guest addresses) \
               and print them as JSON to stdout (or write to FILE).")

let annotate_arg =
  Arg.(value & opt (some string) None
       & info [ "annotate" ] ~docv:"FN"
         ~doc:"Print the annotated disassembly of installed function FN: \
               each guest instruction with its surviving IR, optimizer \
               remarks and emitted host bytes.")

let sentinel_arg =
  Arg.(value & opt ~vopt:(Some "4/64") (some string) None
       & info [ "sentinel" ] ~docv:"K/N"
         ~doc:"Serve the kernel through the runtime sentinel: \
               shadow-validate each of the first K serves and 1-in-N \
               afterwards (default 4/64), quarantining, demoting and \
               self-healing on divergence.")

let requests_arg =
  Arg.(value & opt int 16 & info [ "requests" ] ~docv:"N"
         ~doc:"With --sentinel: number of kernel serves before the \
               measured run (each serve may shadow-validate per the \
               sampling policy).")

let sentinel_json_arg =
  Arg.(value & opt (some string) None
       & info [ "sentinel-json" ] ~docv:"FILE"
         ~doc:"Write the sentinel counters (checks, divergences, \
               quarantined, demotions, healed) as JSON to FILE; '-' \
               for stdout.")

let sentinel_out_arg =
  Arg.(value & opt string "_bench/sentinel"
       & info [ "sentinel-out" ] ~docv:"DIR"
         ~doc:"Directory where the sentinel saves shrunk reproducers \
               of quarantined kernels.")

let verify_arg =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"After the measured run, re-run with the Native kernel \
               and require the final matrix to be bit-identical.")

let tier_arg =
  Arg.(value & opt ~vopt:(Some "2000") (some string) None
       & info [ "tier" ] ~docv:"THRESHOLD"
         ~doc:"Run a partially-hot sliced workload under the tiered \
               adaptive controller: every kernel starts in the \
               superblock engine behind a patchable thunk and tiers up \
               to DBrew then DBrew+LLVM once its always-on hotness \
               crosses THRESHOLD weighted block executions (default \
               2000). Tier-ups are sentinel-validated; call sites are \
               patched without a global flush. ITERS becomes the slice \
               count; KIND/STYLE is the dominant (hot) kernel.")

let blackbox_arg =
  Arg.(value & opt ~vopt:(Some "_bench/blackbox.json") (some string) None
       & info [ "blackbox" ] ~docv:"FILE"
         ~doc:"On any typed error, sentinel divergence or uncaught \
               exception, write a schema-versioned black-box crash \
               report (flight-recorder tail, engine/cache stats, \
               sentinel health, quarantine registry, active spans, \
               fault provenance) to FILE (default \
               _bench/blackbox.json); '-' for stdout.")

module Tel = Obrew_telemetry.Telemetry
module Prov = Obrew_provenance.Provenance
module Sen = Obrew_sentinel.Sentinel
module SenH = Obrew_sentinel.Health
module Srepro = Obrew_sentinel.Srepro
module Tier = Obrew_tier.Tier
module Flight = Obrew_observe.Flight
module Blackbox = Obrew_observe.Blackbox
module Quarantine = Obrew_fault.Quarantine

let provenance_setup profile profile_out annotate remarks =
  if profile <> None || profile_out <> None || annotate <> None
     || remarks <> None
  then Prov.enable ()

let provenance_finish profile profile_out remarks =
  (match profile with
   | None -> ()
   | Some top -> print_string (Prov.format_profile ~top ()));
  (match profile_out with
   | None -> ()
   | Some f ->
     let top = Option.value ~default:20 profile in
     Prov.write_file f (Prov.export_profile ~top ());
     Printf.eprintf "profile written to %s\n" f);
  match remarks with
  | None -> ()
  | Some "-" -> print_string (Prov.export_remarks ())
  | Some f ->
    Prov.write_file f (Prov.export_remarks ());
    Printf.eprintf "%d remarks written to %s\n"
      (Prov.remarks_recorded ()) f

let telemetry_setup trace metrics =
  if trace <> None || metrics <> None then Tel.enable ()

let telemetry_finish trace metrics =
  (match trace with
   | None -> ()
   | Some f ->
     Tel.write_file f (Tel.export_chrome_trace ());
     Printf.eprintf "trace: %d events written to %s (%d dropped)\n"
       (Tel.events_recorded ()) f (Tel.dropped ()));
  match metrics with
  | None -> ()
  | Some "-" -> print_string (Tel.export_metrics ())
  | Some f ->
    Tel.write_file f (Tel.export_metrics ());
    Printf.eprintf "metrics written to %s\n" f

let install_fault_plan = function
  | None -> ()
  | Some p -> (
    match Obrew_fault.Fault.parse p with
    | Ok plan -> Obrew_fault.Fault.install plan
    | Error m ->
      Printf.eprintf "bad --fault plan: %s\n" m;
      exit 2)

let print_stats (env : Modes.env) =
  let open Obrew_x86 in
  let s = Cpu.cache_stats env.Modes.img.Image.cpu in
  let lookups = s.Cpu.block_hits + s.Cpu.block_misses in
  Printf.printf
    "superblocks: %d live, %d hits / %d misses (%.1f%% hit rate), \
     %d chained transitions, %d flushes\n"
    s.Cpu.blocks_live s.Cpu.block_hits s.Cpu.block_misses
    (if lookups = 0 then 0.0
     else 100.0 *. float_of_int s.Cpu.block_hits /. float_of_int lookups)
    s.Cpu.block_chained s.Cpu.block_flushes;
  Printf.printf "traces: %d built, %d side exits taken\n" s.Cpu.traces_built
    s.Cpu.trace_side_exits;
  Printf.printf "indirect inline caches: %d hits / %d misses\n" s.Cpu.ic_hits
    s.Cpu.ic_misses;
  Printf.printf "fused pairs: %s\n"
    (String.concat ", "
       (List.map
          (fun (pat, n) -> Printf.sprintf "%s %d" pat n)
          s.Cpu.fused_pairs));
  Printf.printf
    "lazy flags: %d records, %d materialized (%d avoided), %d dead writes \
     elided\n"
    s.Cpu.flag_records s.Cpu.flag_materialized
    (s.Cpu.flag_records - s.Cpu.flag_materialized)
    s.Cpu.flag_dead_writes;
  let mh, mm = Modes.memo_stats env in
  let dh, dm = Obrew_dbrew.Api.memo_stats () in
  Printf.printf
    "memo caches: transform %d hits / %d misses, dbrew %d hits / %d misses\n"
    mh mm dh dm;
  print_string (Robust.to_string ());
  let fired = Obrew_fault.Fault.fired () in
  if fired > 0 then Printf.printf "fault injection: %d fault(s) fired\n" fired

(* machine-readable twin of [print_stats]: the same engine counters in
   the shape CI archives as an artifact (schema shared with the
   "superblocks" object in BENCH_*.json) *)
let engine_stats_json (env : Modes.env) =
  let open Obrew_x86 in
  let s = Cpu.cache_stats env.Modes.img.Image.cpu in
  let jint k v = Printf.sprintf "  %S: %d" k v in
  let body =
    String.concat ",\n"
      [ Printf.sprintf "  \"schema_version\": 1";
        jint "hits" s.Cpu.block_hits;
        jint "misses" s.Cpu.block_misses;
        jint "chained" s.Cpu.block_chained;
        jint "flushes" s.Cpu.block_flushes;
        jint "live" s.Cpu.blocks_live;
        jint "traces" s.Cpu.traces_built;
        jint "trace_side_exits" s.Cpu.trace_side_exits;
        jint "ic_hits" s.Cpu.ic_hits;
        jint "ic_misses" s.Cpu.ic_misses;
        Printf.sprintf "  \"fused_pairs\": {%s}"
          (String.concat ", "
             (List.map
                (fun (pat, n) -> Printf.sprintf "%S: %d" pat n)
                s.Cpu.fused_pairs));
        jint "flag_records" s.Cpu.flag_records;
        jint "flag_materialized" s.Cpu.flag_materialized;
        jint "flag_dead_writes" s.Cpu.flag_dead_writes ]
  in
  "{\n" ^ body ^ "\n}\n"

let write_stats_json (env : Modes.env) (dest : string) =
  let text = engine_stats_json env in
  if dest = "-" then print_string text
  else begin
    let oc = open_out dest in
    output_string oc text;
    close_out oc;
    Printf.eprintf "engine stats written to %s\n" dest
  end

let robust_json () =
  let s = Robust.stats in
  Printf.sprintf
    "{\"safe_runs\": %d, \"degraded\": %d, \"attempts\": %d, \
     \"failures\": %d, \"dropped_passes\": %d, \"sentinel_checks\": %d, \
     \"sentinel_divergences\": %d, \"sentinel_quarantined\": %d, \
     \"sentinel_demotions\": %d, \"sentinel_healed\": %d}"
    s.Robust.safe_runs s.Robust.degraded s.Robust.attempts s.Robust.failures
    s.Robust.dropped_passes s.Robust.sentinel_checks
    s.Robust.sentinel_divergences s.Robust.sentinel_quarantined
    s.Robust.sentinel_demotions s.Robust.sentinel_healed

(* Wire the crash-report section registry: the black box lives below
   every subsystem it reports on, so each section is a thunk the CLI
   registers once the environment exists.  Providers read state — they
   must never mutate or raise. *)
let register_blackbox (env : Modes.env) =
  Blackbox.attribution :=
    (fun a ->
       match Prov.guest_of_host a with
       | Some p ->
         Some (Printf.sprintf "{\"guest_addr\": %d}" (Prov.addr p))
       | None -> None);
  Blackbox.register_section "engine" (fun () -> engine_stats_json env);
  Blackbox.register_section "memo" (fun () ->
      let mh, mm = Modes.memo_stats env in
      let dh, dm = Obrew_dbrew.Api.memo_stats () in
      Printf.sprintf
        "{\"transform_hits\": %d, \"transform_misses\": %d, \
         \"dbrew_hits\": %d, \"dbrew_misses\": %d}"
        mh mm dh dm);
  Blackbox.register_section "robust" (fun () -> robust_json ());
  Blackbox.register_section "sentinel" (fun () -> Sen.stats_json ());
  Blackbox.register_section "health" (fun () -> Sen.health_json ());
  Blackbox.register_section "quarantine" (fun () -> Quarantine.to_json ());
  Blackbox.register_section "fault" (fun () ->
      Printf.sprintf
        "{\"active\": %b, \"fired\": %d, \"sabotaged\": %d, \"plan\": \"%s\"}"
        (Obrew_fault.Fault.active ())
        (Obrew_fault.Fault.fired ())
        (Obrew_fault.Fault.sabotaged ())
        (Tel.json_escape
           (Obrew_fault.Fault.pp_plan !Obrew_fault.Fault.current)))

let blackbox_write dest ~reason ?stage ?addr ~detail () =
  match dest with
  | None -> ()
  | Some "-" -> print_string (Blackbox.report ?stage ?addr ~reason ~detail ())
  | Some path -> (
    try
      (match Filename.dirname path with
       | "." | "/" | "" -> ()
       | d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755);
      Blackbox.write ~reason ?stage ?addr ~detail path;
      Printf.eprintf "black-box report written to %s\n" path
    with Sys_error m | Unix.Unix_error (_, m, _) ->
      Printf.eprintf "black-box write failed: %s\n" m)

(* the --tier path of the stencil command: run a partially-hot sliced
   workload under the adaptive controller and report the tiering
   trajectory (and, with --verify, check the result against a
   never-tiering control run) *)
let run_tiered env ~iters ~kind ~style ~threshold ~sentinel_out ~stats
    ~verify ~blackbox =
  let cfg =
    { Tier.default_config with
      Tier.hot_threshold = threshold; out_dir = Some sentinel_out }
  in
  (* the controller's site table only exists once the run returns; the
     section thunk reads whatever the last completed run left behind *)
  let last_sites = ref [] in
  Blackbox.register_section "tier" (fun () -> Tier.sites_json !last_sites);
  let cold =
    List.filter_map
      (fun k -> if k = kind then None else Some (k, style))
      [ Modes.Direct; Modes.Flat; Modes.Sorted ]
  in
  let schedule =
    Tier.partially_hot ~slices:(max 1 iters) ~hot:(kind, style) ~cold
  in
  Sen.log := prerr_endline;
  let r = Tier.run ~cfg env ~schedule ~strategy:Tier.Tiered in
  last_sites := r.Tier.r_sites;
  Printf.printf
    "tier: %d slice(s), hot %s/%s, threshold %d (x%d for warm->hot)\n"
    (Array.length schedule) (Modes.kind_name kind) (Modes.style_name style)
    threshold cfg.Tier.promote_mult;
  Printf.printf
    "tier: %d tier-up(s), %d patch(es), %d demotion(s), %d compile(s) \
     (%.3f ms compiling)\n"
    r.Tier.r_tierups r.Tier.r_patches r.Tier.r_demotions r.Tier.r_compiles
    (r.Tier.r_compile_s *. 1e3);
  Printf.printf "tier: total %d cycles, %d instructions\n"
    r.Tier.r_total_cycles r.Tier.r_total_insns;
  if r.Tier.r_patches > 0 then
    Printf.printf
      "tier: reached final code after %d slice(s) (%d cycles, %.3f ms)%s\n"
      r.Tier.r_slices_to_peak r.Tier.r_cycles_to_peak
      (r.Tier.r_time_to_peak_s *. 1e3)
      (if r.Tier.r_reached_peak then "" else " — top tier not reached");
  List.iter
    (fun s ->
      Printf.printf
        "  site %-16s %-4s  %3d slice(s), %d compile(s), %d patch(es)\n"
        (Tier.site_key s)
        (Tier.level_name s.Tier.s_level)
        s.Tier.s_slices s.Tier.s_compiles s.Tier.s_patches)
    r.Tier.r_sites;
  if stats then
    List.iter
      (fun (tick, m) -> Printf.printf "  [%03d] %s\n" tick m)
      r.Tier.r_events;
  if verify then begin
    Sen.reset ();
    let control =
      Tier.run ~cfg env ~schedule ~strategy:Tier.NeverTier
    in
    if r.Tier.r_result = control.Tier.r_result then
      Printf.printf
        "verify: final matrix bit-identical to the never-tier control \
         (%d cells)\n"
        (Array.length r.Tier.r_result)
    else begin
      Printf.eprintf "verify: final matrix DIFFERS from never-tier control\n";
      blackbox_write blackbox ~reason:Blackbox.Sentinel_divergence
        ~detail:"tiered final matrix differs from never-tier control" ();
      exit 1
    end
  end

let stencil_cmd =
  let run sz iters kind style tr dump stats stats_json fallback max_insns
      fault trace metrics profile profile_out annotate remarks sentinel
      requests sentinel_json sentinel_out verify tier blackbox =
    install_fault_plan fault;
    telemetry_setup trace metrics;
    provenance_setup profile profile_out annotate remarks;
    let env = Modes.build ~sz () in
    register_blackbox env;
    (* post-mortem triggers: a clean exit with caught divergences is
       still an incident worth a report *)
    let bb_finish () =
      if Robust.stats.Robust.sentinel_divergences > 0 then
        blackbox_write blackbox ~reason:Blackbox.Sentinel_divergence
          ~detail:
            (Printf.sprintf "%d divergence(s) caught by the sentinel"
               Robust.stats.Robust.sentinel_divergences)
          ()
      else if blackbox <> None then
        Printf.eprintf "black-box: no incident, report not written\n"
    in
    let guard f =
      try f () with
      | Err.Error _ as e -> raise e
      | e ->
        blackbox_write blackbox ~reason:Blackbox.Uncaught_exception
          ~detail:(Printexc.to_string e) ();
        raise e
    in
    match tier with
    | Some spec ->
      let threshold =
        match int_of_string_opt spec with
        | Some t when t > 0 -> t
        | _ ->
          Printf.eprintf "bad --tier threshold %S (want a positive int)\n"
            spec;
          exit 2
      in
      guard (fun () ->
          run_tiered env ~iters ~kind ~style ~threshold ~sentinel_out ~stats
            ~verify ~blackbox);
      print_endline (Sen.stats_to_string ());
      (match sentinel_json with
       | None -> ()
       | Some "-" -> print_string (Sen.stats_json ())
       | Some f ->
         Sen.write_stats_json f;
         Printf.eprintf "sentinel stats written to %s\n" f);
      (match stats_json with
       | Some dest -> write_stats_json env dest
       | None -> ());
      bb_finish ();
      provenance_finish profile profile_out remarks;
      telemetry_finish trace metrics
    | None ->
    (try
       guard @@ fun () ->
       let kernel, used, dt =
         match sentinel with
         | Some spec ->
           let bad () =
             Printf.eprintf "bad --sentinel spec %S (want K/N)\n" spec;
             exit 2
           in
           let first_k, sample_n =
             match String.split_on_char '/' spec with
             | [ k; n ] -> (
               match (int_of_string_opt k, int_of_string_opt n) with
               | Some k, Some n when k >= 0 && n >= 0 -> (k, n)
               | _ -> bad ())
             | _ -> bad ()
           in
           let policy =
             { SenH.default_policy with SenH.first_k; sample_n }
           in
           Sen.log := prerr_endline;
           let t0 = Tel.Clock.now () in
           let last = ref None in
           for _ = 1 to max 1 requests do
             last :=
               Some (Sen.serve ~policy ~out_dir:sentinel_out env kind style tr)
           done;
           let sv = Option.get !last in
           (sv.Sen.sv_kernel, sv.Sen.sv_mode, Tel.Clock.now () -. t0)
         | None ->
           if fallback then begin
             let r = Modes.transform_safe env kind style tr in
             List.iter
               (fun (m, e) ->
                 Printf.eprintf "%s failed: %s\n" (Modes.transform_name m)
                   (Err.to_string e))
               r.Modes.failures;
             (r.Modes.kernel, r.Modes.used, r.Modes.seconds)
           end
           else
             let kernel, dt = Modes.transform env kind style tr in
             (kernel, tr, dt)
       in
       let cycles, insns = Modes.run ?max_insns env kind style ~kernel ~iters in
       Printf.printf
         "%s %s %s: %d cycles, %d instructions, transform %.3f ms\n"
         (Modes.kind_name kind) (Modes.style_name style)
         (Modes.transform_name used) cycles insns (dt *. 1e3);
       if verify then begin
         let got = Modes.result_matrix env ~iters in
         let native = Modes.native_addr env kind style in
         ignore (Modes.run ?max_insns env kind style ~kernel:native ~iters);
         let ref_m = Modes.result_matrix env ~iters in
         let same =
           Array.length got = Array.length ref_m
           &&
           let ok = ref true in
           Array.iteri
             (fun i v ->
               if Int64.bits_of_float v <> Int64.bits_of_float ref_m.(i) then
                 ok := false)
             got;
           !ok
         in
         if same then
           Printf.printf "verify: final matrix bit-identical to Native (%d cells)\n"
             (Array.length got)
         else begin
           Printf.eprintf "verify: final matrix DIFFERS from Native\n";
           blackbox_write blackbox ~reason:Blackbox.Sentinel_divergence
             ~detail:"final matrix differs from the Native reference" ();
           telemetry_finish trace metrics;
           exit 1
         end
       end;
       if sentinel <> None then print_endline (Sen.stats_to_string ());
       (match sentinel_json with
        | None -> ()
        | Some "-" -> print_string (Sen.stats_json ())
        | Some f ->
          Sen.write_stats_json f;
          Printf.eprintf "sentinel stats written to %s\n" f);
       if stats then print_stats env;
       (match stats_json with
        | Some dest -> write_stats_json env dest
        | None -> ());
       if dump then
         print_endline
           (Obrew_x86.Pp.listing
              (Obrew_x86.Image.disassemble_fn env.Modes.img kernel));
       match annotate with
       | None -> ()
       | Some fn ->
         print_string
           (Annotate.annotate ~img:env.Modes.img ?modul:env.Modes.last_ir
              ~fn ())
     with Err.Error e ->
       Printf.eprintf "transformation failed: %s\n" (Err.to_string e);
       blackbox_write blackbox ~reason:Blackbox.Typed_error
         ~stage:(Err.stage_name e.Err.stage) ?addr:e.Err.addr
         ~detail:(Err.to_string e) ();
       telemetry_finish trace metrics;
       exit 1);
    bb_finish ();
    provenance_finish profile profile_out remarks;
    telemetry_finish trace metrics
  in
  Cmd.v
    (Cmd.info "stencil" ~doc:"Run the Jacobi case study in one mode.")
    Term.(const run $ sz_arg $ iters_arg $ kind_arg $ style_arg
          $ transform_arg $ dump_arg $ stats_arg $ stats_json_arg
          $ fallback_arg $ max_insns_arg $ fault_arg $ trace_arg
          $ metrics_arg $ profile_arg $ profile_out_arg $ annotate_arg
          $ remarks_arg $ sentinel_arg $ requests_arg $ sentinel_json_arg
          $ sentinel_out_arg $ verify_arg $ tier_arg $ blackbox_arg)

(* the consolidated human-readable status view: run a short sentinel
   workload (so the per-process registries have something in them),
   then render every observability surface in one page — engine
   counters, sentinel health, quarantine registry and the flight
   recorder's tail.  With --json, also snapshot the same state as a
   manual black-box report. *)
let report_cmd =
  let json_arg =
    Arg.(value & opt ~vopt:(Some "-") (some string) None
         & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write a manual black-box snapshot of the same \
                 state to FILE ('-' for stdout).")
  in
  let events_arg =
    Arg.(value & opt int 20 & info [ "events" ] ~docv:"N"
           ~doc:"Flight-recorder tail length to print (default 20).")
  in
  let run sz iters kind style tr fault sentinel requests sentinel_out json
      events_n =
    install_fault_plan fault;
    let env = Modes.build ~sz () in
    register_blackbox env;
    let spec = Option.value ~default:"4/64" sentinel in
    let first_k, sample_n =
      let bad () =
        Printf.eprintf "bad --sentinel spec %S (want K/N)\n" spec;
        exit 2
      in
      match String.split_on_char '/' spec with
      | [ k; n ] -> (
        match (int_of_string_opt k, int_of_string_opt n) with
        | Some k, Some n when k >= 0 && n >= 0 -> (k, n)
        | _ -> bad ())
      | _ -> bad ()
    in
    let policy = { SenH.default_policy with SenH.first_k; sample_n } in
    Sen.log := prerr_endline;
    (try
       let last = ref None in
       for _ = 1 to max 1 requests do
         last :=
           Some (Sen.serve ~policy ~out_dir:sentinel_out env kind style tr)
       done;
       match !last with
       | Some sv ->
         ignore (Modes.run env kind style ~kernel:sv.Sen.sv_kernel ~iters)
       | None -> ()
     with Err.Error e ->
       Printf.eprintf "workload failed: %s\n" (Err.to_string e));
    print_endline "== obrew status report ==";
    Printf.printf
      "workload: sz=%d iters=%d, %s/%s requested as %s, %d sentinel \
       serve(s) (%d/%d sampling)\n"
      sz iters (Modes.kind_name kind) (Modes.style_name style)
      (Modes.transform_name tr) (max 1 requests) first_k sample_n;
    print_newline ();
    print_endline "-- engine --";
    print_stats env;
    print_newline ();
    print_endline "-- sentinel --";
    print_endline (Sen.stats_to_string ());
    List.iter (fun l -> print_endline ("  " ^ l)) (Sen.health_lines ());
    print_newline ();
    print_endline "-- quarantine --";
    (match Quarantine.entries () with
     | [] -> print_endline "  (empty)"
     | es ->
       List.iter
         (fun e ->
           Printf.printf "  [tick %3d] %s  %-10s %s\n" e.Quarantine.q_tick
             (Digest.to_hex e.Quarantine.q_digest) e.Quarantine.q_mode
             e.Quarantine.q_detail)
         es);
    print_newline ();
    Printf.printf "-- flight recorder (last %d of %d event(s), %d dropped) --\n"
      (min events_n (Flight.retained ()))
      (Flight.recorded ()) (Flight.dropped ());
    List.iter
      (fun e -> print_endline ("  " ^ Flight.event_to_string e))
      (Flight.last events_n);
    match json with
    | None -> ()
    | Some _ ->
      blackbox_write json ~reason:Blackbox.Manual
        ~detail:"manual status snapshot (obrew report)" ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run a short sentinel workload and render the consolidated \
             observability status view (engine, sentinel health, \
             quarantine, flight-recorder tail).")
    Term.(const run $ sz_arg $ iters_arg $ kind_arg $ style_arg
          $ transform_arg $ fault_arg $ sentinel_arg $ requests_arg
          $ sentinel_out_arg $ json_arg $ events_arg)

let modes_cmd =
  let run sz iters style stats fault trace metrics =
    install_fault_plan fault;
    telemetry_setup trace metrics;
    let env = Modes.build ~sz () in
    Printf.printf "%-14s" "";
    let transforms =
      [ Modes.Native; Modes.Llvm; Modes.LlvmFix; Modes.DBrew;
        Modes.DBrewLlvm ]
    in
    List.iter (fun t -> Printf.printf "%12s" (Modes.transform_name t))
      transforms;
    print_newline ();
    List.iter
      (fun (kind, kname) ->
        Printf.printf "%-14s" kname;
        List.iter
          (fun t ->
            try
              let k, _ = Modes.transform env kind style t in
              let cycles, _ = Modes.run env kind style ~kernel:k ~iters in
              Printf.printf "%12.2f" (float_of_int cycles /. 1e6)
            with Err.Error _ -> Printf.printf "%12s" "n/a")
          transforms;
        print_newline ())
      [ (Modes.Direct, "Direct"); (Modes.Flat, "Struct");
        (Modes.Sorted, "SortedStruct") ];
    if stats then print_stats env;
    telemetry_finish trace metrics
  in
  Cmd.v
    (Cmd.info "modes"
       ~doc:"All five modes side by side (Fig. 9, in Mcycles).")
    Term.(const run $ sz_arg $ iters_arg $ style_arg $ stats_arg
          $ fault_arg $ trace_arg $ metrics_arg)

let fig6_annotate_arg =
  Arg.(value & flag & info [ "annotate" ]
       ~doc:"Also JIT-install the flag-cache version and print its \
             annotated disassembly (guest insns, surviving IR, remarks, \
             host bytes).")

let fig6_cmd =
  let run annotate =
    let open Obrew_x86 in
    let open Insn in
    if annotate then Prov.enable ();
    let code =
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
        I (Cmov (L, W64, Reg.RAX, OReg Reg.RSI));
        I Ret ]
    in
    List.iter
      (fun flag_cache ->
        Prov.reset ();
        let img = Image.create () in
        let fn = Image.install_code img code in
        let f =
          Obrew_lifter.Lift.lift
            ~config:{ Obrew_lifter.Lift.default_config with flag_cache }
            ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
            ~entry:fn ~name:"max"
            { Obrew_ir.Ins.args = [ I64; I64 ]; ret = Some I64 }
        in
        let m = { Obrew_ir.Ins.funcs = [ f ]; globals = [] } in
        Obrew_opt.Pipeline.run m;
        Printf.printf "\n=== flag cache: %b ===\n%s" flag_cache
          (Obrew_ir.Pp_ir.func f);
        if annotate && flag_cache then begin
          ignore (Obrew_backend.Jit.install_func img f);
          print_newline ();
          print_string (Annotate.annotate ~img ~modul:m ~fn:"max" ())
        end)
      [ false; true ]
  in
  Cmd.v (Cmd.info "fig6" ~doc:"The flag cache effect (Fig. 6).")
    Term.(const run $ fig6_annotate_arg)

let passes_cmd =
  let run sz =
    let env = Modes.build ~sz () in
    ignore
      (Modes.transform ~use_memo:false env Modes.Flat Modes.Element
         Modes.LlvmFix);
    Printf.printf "pass activity while fixating the flat element kernel:\n";
    List.iter
      (fun (name, n) -> Printf.printf "  %-14s %4d\n" name n)
      (List.sort compare
         Obrew_opt.Pipeline.stats.Obrew_opt.Pipeline.pass_changes)
  in
  Cmd.v
    (Cmd.info "passes" ~doc:"Optimizer pass activity (Sec. VIII outlook).")
    Term.(const run $ sz_arg)

let fuzz_cmd =
  let module Dr = Obrew_oracle.Driver in
  let module Or_ = Obrew_oracle.Oracle in
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of randomized cases to run.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S"
           ~doc:"Base PRNG seed; the same seed reproduces the same \
                 campaign bit for bit.")
  in
  let tiers_arg =
    Arg.(value & opt string "all" & info [ "tiers" ] ~docv:"TIERS"
           ~doc:"Comma-separated tier list (cpu-step, cpu-sb, ir-lift, \
                 ir-o3, jit) or 'all'.")
  in
  let max_len_arg =
    Arg.(value & opt int 24 & info [ "max-len" ] ~docv:"N"
           ~doc:"Maximum body length in instructions.")
  in
  let profile_arg =
    Arg.(value & opt string "uniform" & info [ "profile" ] ~docv:"P"
           ~doc:"Case-shape bias: 'uniform' draws from the whole ISA \
                 subset, 'fusion' skews toward fusible adjacent pairs \
                 and tight backedge loops to stress the superblock \
                 engine's traces and mega-op fusion, 'indirect' skews \
                 toward jump tables, computed gotos and call/ret \
                 chains to stress indirect control flow.")
  in
  let out_arg =
    Arg.(value & opt (some string) (Some "_bench/oracle")
         & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory where shrunk reproducers are saved.")
  in
  let max_failures_arg =
    Arg.(value & opt int 5 & info [ "max-failures" ] ~docv:"N"
           ~doc:"Stop the campaign after N divergences.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the summary.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"PATH"
           ~doc:"Instead of a campaign, re-run persisted reproducers: \
                 PATH is a .repro file or a directory of them.  Oracle \
                 reproducers replay through every tier (per-tier \
                 verdict); sentinel reproducers re-probe the captured \
                 kernel bytes against the native reference.")
  in
  let replay_file tiers (f : string) : bool (* failed? *) =
    let prefix =
      try
        let ic = open_in_bin f in
        let n = min 256 (in_channel_length ic) in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error _ -> ""
    in
    let base = Filename.basename f in
    if Srepro.looks_like_srepro prefix then
      match Sen.replay f with
      | Error e ->
        Printf.printf "%-32s ERROR %s\n" base (Err.to_string e);
        true
      | Ok r ->
        (* a quarantine capture that still trips the probe is a good
           capture, not a regression — never a failure either way *)
        Printf.printf "%-32s srepro %s/%s %s: %s\n" base r.Sen.rr_kind
          r.Sen.rr_style r.Sen.rr_mode
          (if r.Sen.rr_diverged then "still reproduces (" ^ r.Sen.rr_detail ^ ")"
           else "no longer reproduces (" ^ r.Sen.rr_detail ^ ")");
        false
    else
      match Obrew_oracle.Repro.load_result f with
      | Error e ->
        Printf.printf "%-32s ERROR %s\n" base (Err.to_string e);
        true
      | Ok r ->
        let v = Obrew_oracle.Repro.replay ~tiers r in
        List.iter
          (fun (t, m) ->
            Printf.printf "%-32s skip %s: %s\n" base (Or_.tier_name t) m)
          v.Or_.v_skips;
        (match v.Or_.v_div with
         | Some d ->
           Printf.printf "%-32s DIVERGENCE %s\n" base
             (String.trim (Or_.divergence_to_string d));
           true
         | None ->
           Printf.printf "%-32s ok (%d tier(s) agree)\n" base
             (List.length v.Or_.v_ran);
           false)
  in
  let run_replay tiers (path : string) =
    let files =
      if Sys.file_exists path && Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".repro")
        |> List.sort compare
        |> List.map (Filename.concat path)
      else [ path ]
    in
    if files = [] then begin
      Printf.eprintf "no .repro files under %s\n" path;
      exit 2
    end;
    let failed = List.length (List.filter (replay_file tiers) files) in
    Printf.printf "replayed %d reproducer(s), %d failure(s)\n"
      (List.length files) failed;
    if failed > 0 then exit 1
  in
  let run seeds seed tiers max_len profile out max_failures quiet stats
      trace metrics replay =
    telemetry_setup trace metrics;
    if stats then Tel.enable ();
    let profile =
      match profile with
      | "uniform" -> Obrew_oracle.Gen.Uniform
      | "fusion" -> Obrew_oracle.Gen.Fusion
      | "indirect" -> Obrew_oracle.Gen.Indirect
      | p ->
        Printf.eprintf
          "unknown profile %S (want uniform, fusion or indirect)\n" p;
        exit 2
    in
    let tiers =
      if tiers = "all" then Or_.all_tiers
      else
        List.map
          (fun t ->
            match Or_.tier_of_name (String.trim t) with
            | Some t -> t
            | None ->
              Printf.eprintf "unknown tier %S\n" t;
              exit 2)
          (String.split_on_char ',' tiers)
    in
    if List.length tiers < 2 then begin
      Printf.eprintf "need at least two tiers to compare\n";
      exit 2
    end;
    (match replay with
     | Some path ->
       run_replay tiers path;
       telemetry_finish trace metrics;
       exit 0
     | None -> ());
    let cfg =
      { Dr.seeds; seed; tiers; max_len; profile; out_dir = out;
        max_failures; log = (if quiet then ignore else prerr_endline) }
    in
    let s = Dr.run_campaign cfg in
    print_string (Dr.pp_summary s);
    if stats then begin
      let show name = Printf.printf "  %-24s %d\n" name (Tel.counter name).Tel.n in
      Printf.printf "telemetry:\n";
      show "oracle.cases";
      show "oracle.divergences";
      show "oracle.cases_skipped";
      show "oracle.shrink_steps";
      List.iter
        (fun t ->
          show ("oracle.runs." ^ Or_.tier_name t);
          show ("oracle.skips." ^ Or_.tier_name t))
        tiers
    end;
    telemetry_finish trace metrics;
    if s.Dr.s_failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential translation validation: run randomized \
             instruction sequences through every semantic tier \
             (emulator, superblocks, lifted IR, optimized IR, JIT) and \
             shrink any mismatch to a minimal reproducer.")
    Term.(const run $ seeds_arg $ seed_arg $ tiers_arg $ max_len_arg
          $ profile_arg $ out_arg $ max_failures_arg $ quiet_arg
          $ stats_arg $ trace_arg $ metrics_arg $ replay_arg)

let () =
  let doc = "optimized lightweight binary re-writing at runtime" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "obrew" ~version:"1.0.0" ~doc)
          [ stencil_cmd; modes_cmd; fig6_cmd; passes_cmd; fuzz_cmd;
            report_cmd ]))
